(* flopt: command-line driver for the file-layout optimization framework.

   Subcommands:
     apps                      list the 16-application suite
     plan APP                  show the compiler pass's per-array decisions
     run APP [options]         simulate one execution and print metrics
                               (--trace FILE writes a JSONL event trace,
                                --metrics prints per-node breakdowns and
                                request-latency percentiles)
     bench APP [options]       repeated runs; report p50/p99 request latency
     analyze TRACE [options]   trace analytics: reuse-distance histograms,
                               inter-thread sharing/conflict matrices,
                               per-thread distinct-block counts
                               (--perfetto OUT.json exports a Chrome
                                trace-event file for ui.perfetto.dev)
     layout APP ARRAY_ID       dump a sample of the element->offset mapping
     traffic APP-MIX [options] open-loop multi-tenant traffic over a Zipfian
                               app mix, sharded across storage-node worker
                               domains; per-tenant latency percentiles,
                               fairness and noisy-neighbor deltas
     topology                  print the default scaled Table 1 system *)

open Cmdliner
open Flo_engine
open Flo_workloads
open Flo_core

let find_app name =
  match Suite.find name with
  | app -> Ok app
  | exception Not_found ->
    Error (`Msg (Printf.sprintf "unknown application %S (try `flopt apps')" name))

let app_conv =
  Arg.conv ((fun s -> find_app s), fun ppf a -> Format.fprintf ppf "%s" a.App.name)

let app_arg =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Application name.")

let scope_arg =
  let values =
    [ ("both", Internode.Both); ("io-only", Internode.Io_only);
      ("storage-only", Internode.Storage_only) ]
  in
  Arg.(value & opt (enum values) Internode.Both
       & info [ "scope" ] ~docv:"SCOPE" ~doc:"Cache layers targeted: both, io-only, storage-only.")

type layout_mode = Default | Inter | Reindexed | Compmapped

let layout_arg =
  let values =
    [ ("default", Default); ("inter", Inter); ("reindex", Reindexed); ("compmap", Compmapped) ]
  in
  Arg.(value & opt (enum values) Inter
       & info [ "layout" ] ~docv:"MODE"
           ~doc:"File layouts: default (row-major), inter (the paper's pass), reindex [27], compmap [26].")

let caching_arg =
  let values =
    [ ("lru", Run.Lru); ("karma", Run.Karma); ("demote", Run.Demote);
      ("mq", Run.Custom (Flo_storage.Lru.create, Flo_storage.Mq.create));
      ("clock", Run.Custom (Flo_storage.Clock.create, Flo_storage.Clock.create)) ]
  in
  Arg.(value & opt (enum values) Run.Lru
       & info [ "caching" ] ~docv:"POLICY" ~doc:"Cache management: lru, karma, demote, mq, clock.")

let mapping_arg =
  Arg.(value & opt int 0
       & info [ "mapping" ] ~docv:"SEED"
           ~doc:"Thread-to-node mapping: 0 = identity (Mapping I), 1-3 = Mappings II-IV.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write every simulator event (access/hit/miss/evict/demote/prefetch/disk \
                 read) as one JSON object per line to $(docv).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect and print per-node cache breakdowns, request-latency \
                 percentiles and optimizer phase timings.")

let config = Config.default

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Worker domains for app/rep fan-out (default: \
                 \\$FLOPT_JOBS or the machine's core count; 1 = the \
                 sequential reference path).  Results are identical for \
                 every value.")

let resolve_jobs = function
  | None -> Parallel.default_jobs ()
  | Some n when n >= 1 -> n
  | Some _ ->
    prerr_endline "flopt: --jobs must be a positive integer";
    exit 2

(* run with the observability layer attached per the --trace/--metrics
   flags; the trace file is flushed and closed even if the run raises
   (Sink.with_jsonl), so a crashed simulation still leaves a parseable
   JSONL prefix *)
let observed_run ~trace ~metrics f =
  let registry = if metrics then Some (Flo_obs.Metrics.create ()) else None in
  let result =
    match trace with
    | None -> f ?sink:None ?metrics:registry ()
    | Some path -> (
      try
        Flo_obs.Sink.with_jsonl path (fun sink ->
            f ?sink:(Some sink) ?metrics:registry ())
      with Sys_error msg ->
        Printf.eprintf "flopt: cannot write trace file: %s\n" msg;
        exit 2)
  in
  (result, registry)

let print_metrics registry (result : Run.result) =
  let node_rows prefix stats =
    Array.to_list (Array.mapi (fun i s -> (Printf.sprintf "%s%d" prefix i, s)) stats)
  in
  Report.print_node_stats ~title:"I/O-node caches (L1)" (node_rows "io" result.Run.l1_nodes);
  Report.print_node_stats ~title:"storage-node caches (L2)"
    (node_rows "st" result.Run.l2_nodes);
  (match Flo_obs.Metrics.find_histogram registry "request_latency_us" with
  | Some h -> Report.print_latency ~title:"request latency (modeled)" h
  | None -> ());
  (* span rows: gather first so the name column fits the widest span name
     instead of truncating past a fixed 28 columns *)
  let spans =
    List.filter_map
      (fun (name, _labels, value) ->
        match value with
        | Flo_obs.Metrics.Histogram h
          when String.length name > 5 && String.sub name 0 5 = "span." ->
          Some (name, Report.latency_summary h)
        | _ -> None)
      (Flo_obs.Metrics.to_list registry)
  in
  let width = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 spans in
  List.iter (fun (name, cell) -> Printf.printf "%-*s %s\n" width name cell) spans

let apps_cmd =
  let doc = "List the 16-application evaluation suite." in
  let run () =
    (* column widths from the rendered cells, not fixed field widths *)
    let name_w =
      List.fold_left (fun acc a -> max acc (String.length a.App.name)) 0 Suite.all
    in
    let group_w =
      List.fold_left
        (fun acc a -> max acc (String.length (App.group_to_string a.App.group)))
        0 Suite.all
    in
    List.iter
      (fun app ->
        Printf.printf "%-*s [%-*s]%s %s\n" name_w app.App.name group_w
          (App.group_to_string app.App.group)
          (if app.App.master_slave then " master-slave" else "")
          app.App.description)
      Suite.all
  in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

let plan_cmd =
  let doc = "Show the layout pass's decisions for an application." in
  let run app scope =
    let plan = Experiment.inter_plan ~scope config app in
    Format.printf "%a@." Optimizer.pp plan
  in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run $ app_arg $ scope_arg)

let run_cmd =
  let doc = "Simulate one execution of an application." in
  let run app layout_mode caching scope seed trace metrics =
    let mapping = if seed = 0 then None else Some (Experiment.random_mapping ~seed config) in
    let result, registry =
      observed_run ~trace ~metrics (fun ?sink ?metrics () ->
          match layout_mode with
          | Default ->
            Run.run ?mapping ~caching ?sink ?metrics ~config
              ~layouts:(Experiment.default_layouts app) app
          | Inter ->
            Run.run ?mapping ~caching ?sink ?metrics ~config
              ~layouts:(Experiment.inter_layouts ~scope config app) app
          | Reindexed ->
            let outcome = Experiment.reindex_best config app in
            Run.run ?mapping ~caching ?sink ?metrics ~config
              ~layouts:(fun id -> List.assoc id outcome.Reindex.layouts)
              app
          | Compmapped ->
            let outcome = Experiment.compmap_best config app in
            Run.run ?mapping ~caching ?sink ?metrics
              ~assigns:(fun i -> List.assoc i outcome.Compmap.choices)
              ~config ~layouts:(Experiment.default_layouts app) app)
    in
    Format.printf "%a@." Run.pp_result result;
    Printf.printf "miss/element: L1 %.2f%%  L2 %.2f%%\n"
      (100. *. Run.l1_miss_per_element result)
      (100. *. Run.l2_miss_per_element result);
    Option.iter (fun r -> print_metrics r result) registry;
    Option.iter (Printf.printf "trace written to %s\n") trace
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ app_arg $ layout_arg $ caching_arg $ scope_arg $ mapping_arg
          $ trace_arg $ metrics_arg)

let bench_cmd =
  let doc =
    "Run an application repeatedly and report request-latency percentiles \
     (p50/p90/p99) from the observability histograms."
  in
  let reps_arg =
    Arg.(value & opt int 3
         & info [ "reps" ] ~docv:"N" ~doc:"Number of repetitions to accumulate.")
  in
  let readahead_arg =
    Arg.(value & opt int 0
         & info [ "readahead" ] ~docv:"K"
             ~doc:"Storage-node sequential prefetch depth per disk read.")
  in
  let run app layout_mode caching reps readahead jobs =
    if reps <= 0 then begin
      prerr_endline "flopt: bench: --reps must be positive";
      exit 2
    end;
    let jobs = resolve_jobs jobs in
    let layouts =
      match layout_mode with
      | Default | Reindexed | Compmapped -> Experiment.default_layouts app
      | Inter -> Experiment.inter_layouts config app
    in
    let registry, results =
      if jobs <= 1 then begin
        (* the sequential reference: one registry accumulated across reps *)
        let registry = Flo_obs.Metrics.create () in
        let rs =
          Array.init reps (fun _ ->
              Run.run ~caching ~readahead ~metrics:registry ~config ~layouts app)
        in
        (registry, rs)
      end
      else begin
        (* each rep simulates into its own registry on the domain pool;
           merging in rep order keeps the report deterministic *)
        let pairs =
          Parallel.map ~jobs
            (fun _rep ->
              let registry = Flo_obs.Metrics.create () in
              let r = Run.run ~caching ~readahead ~metrics:registry ~config ~layouts app in
              (registry, r))
            (Array.init reps Fun.id)
        in
        let merged =
          Array.fold_left
            (fun acc (reg, _) -> Flo_obs.Metrics.merge acc reg)
            (Flo_obs.Metrics.create ()) pairs
        in
        (merged, Array.map snd pairs)
      end
    in
    let elapsed = Array.to_list (Array.map (fun r -> r.Run.elapsed_us) results) in
    let last = Some results.(Array.length results - 1) in
    Printf.printf "%s: %d rep(s), modeled time %s ms (mean)\n\n" app.App.name reps
      (Report.ms (Report.mean elapsed));
    Option.iter (print_metrics registry) last;
    let disk_rows =
      List.filter_map
        (fun (name, labels, value) ->
          match value with
          | Flo_obs.Metrics.Histogram h when name = "disk_service_us" ->
            let node = try List.assoc "node" labels with Not_found -> "?" in
            Some
              (Printf.sprintf "disk_service_us{node=%s}" node,
               Report.latency_summary h)
          | _ -> None)
        (Flo_obs.Metrics.to_list registry)
    in
    let width =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 disk_rows
    in
    List.iter
      (fun (label, cell) -> Printf.printf "%-*s %s\n" width label cell)
      disk_rows
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ app_arg $ layout_arg $ caching_arg $ reps_arg $ readahead_arg
          $ jobs_arg)

let analyze_cmd =
  let doc =
    "Analyze a JSONL event trace: block reuse-distance histograms per cache, \
     inter-thread sharing and eviction-conflict matrices per shared cache, \
     per-thread distinct-block counts (the paper's Step I/II objectives), and \
     optional Perfetto export."
  in
  let trace_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"JSONL trace written by $(b,flopt run --trace).")
  in
  let perfetto_arg =
    Arg.(value & opt (some string) None
         & info [ "perfetto" ] ~docv:"OUT"
             ~doc:"Also write the trace as Chrome trace-event JSON to $(docv) — open \
                   it in ui.perfetto.dev (per-thread request timelines colored by \
                   L1-hit/L2-hit/disk outcome).")
  in
  let max_matrix_arg =
    Arg.(value & opt int 16
         & info [ "max-matrix" ] ~docv:"N"
             ~doc:"Print full sharing/conflict matrices only up to $(docv) threads \
                   (totals are always printed).")
  in
  let run path perfetto max_matrix =
    let keep_events = perfetto <> None in
    match Flo_analysis.Analyzer.load_file ~keep_events path with
    | Error (Flo_analysis.Analyzer.Malformed _ as e) ->
      (* a broken trace is a data error, not an I/O one: report the offending
         line and exit 1 so scripts can tell the two apart *)
      Printf.eprintf "flopt: analyze: %s: %s\n" path
        (Flo_analysis.Analyzer.load_error_to_string e);
      exit 1
    | Error (Flo_analysis.Analyzer.Io _ as e) ->
      Printf.eprintf "flopt: analyze: %s: %s\n" path
        (Flo_analysis.Analyzer.load_error_to_string e);
      exit 2
    | Ok a ->
      Report.print_analysis ~max_matrix a;
      Option.iter
        (fun out ->
          let oc =
            try open_out out
            with Sys_error msg ->
              Printf.eprintf "flopt: cannot write %s: %s\n" out msg;
              exit 2
          in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> Flo_analysis.Perfetto.write oc (Flo_analysis.Analyzer.events a));
          Printf.printf "perfetto trace written to %s (open in ui.perfetto.dev)\n" out)
        perfetto
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ trace_pos $ perfetto_arg $ max_matrix_arg)

let layout_cmd =
  let doc = "Dump a sample of the element-to-offset mapping of one array." in
  let array_arg =
    Arg.(required & pos 1 (some int) None & info [] ~docv:"ARRAY_ID" ~doc:"Array id.")
  in
  let run app id =
    let plan = Experiment.inter_plan config app in
    match Optimizer.layout_of plan id with
    | exception Not_found -> prerr_endline "no such array id"
    | layout ->
      let space = File_layout.space layout in
      Printf.printf "layout: %s  file size: %d elements (space %d)\n"
        (File_layout.describe layout) (File_layout.size layout)
        (Flo_poly.Data_space.cardinal space);
      let step = max 1 (Flo_poly.Data_space.cardinal space / 16) in
      let i = ref 0 in
      Flo_poly.Data_space.iter space (fun a ->
          if !i mod step = 0 then
            Format.printf "  %a -> %d%s@." Flo_linalg.Ivec.pp a (File_layout.offset_of layout a)
              (match File_layout.owner_of layout a with
              | Some t -> Printf.sprintf " (thread %d)" t
              | None -> "");
          incr i)
  in
  Cmd.v (Cmd.info "layout" ~doc) Term.(const run $ app_arg $ array_arg)

let trace_csv_cmd =
  let doc = "Export per-thread block-request traces as CSV (thread, seq, file, block)." in
  let out_arg =
    Arg.(value & opt string "-" & info [ "out" ] ~docv:"FILE" ~doc:"Output file ('-' = stdout).")
  in
  let run app layout_mode out =
    let layouts =
      match layout_mode with
      | Default | Reindexed | Compmapped -> Experiment.default_layouts app
      | Inter -> Experiment.inter_layouts config app
    in
    let topo = config.Config.topology in
    let oc = if out = "-" then stdout else open_out out in
    Printf.fprintf oc "nest,thread,seq,file,block\n";
    List.iteri
      (fun i nest ->
        let streams =
          Tracegen.nest_streams ~layouts ~block_elems:topo.Flo_storage.Topology.block_elems
            ~threads:(Flo_storage.Topology.threads topo) ~blocks_per_thread:1 nest
        in
        Array.iteri
          (fun t stream ->
            Array.iteri
              (fun seq b ->
                Printf.fprintf oc "%d,%d,%d,%d,%d\n" i t seq (Flo_storage.Block.file b)
                  (Flo_storage.Block.index b))
              stream)
          streams)
      app.App.program.Flo_poly.Program.nests;
    if out <> "-" then close_out oc
  in
  Cmd.v (Cmd.info "trace-csv" ~doc) Term.(const run $ app_arg $ layout_arg $ out_arg)

(* `flopt trace` — the viewer for request-level sampled traces written by
   `flopt traffic --trace-out` / `flopt slo --trace-out` *)
let trace_cmd =
  let doc =
    "Render request-level sampled traces (JSONL written by $(b,flopt traffic \
     --trace-out) or $(b,flopt slo --trace-out)) as span trees on the \
     modeled clock: arrival, shard queueing/congestion, per-layer cache \
     verdicts, disk service and retries.  Filter by tenant, app, outcome, \
     latency or trace id — the ids are exactly the ones report p99 exemplar \
     lines and Perfetto slice args carry."
  in
  let file_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Sampled-trace JSONL file.")
  in
  let tenant_arg =
    Arg.(value & opt (some int) None
         & info [ "tenant" ] ~docv:"N" ~doc:"Only traces of tenant $(docv).")
  in
  let app_filter_arg =
    Arg.(value & opt (some string) None
         & info [ "app" ] ~docv:"NAME" ~doc:"Only traces of application $(docv).")
  in
  let outcome_arg =
    Arg.(value & opt (some string) None
         & info [ "outcome" ] ~docv:"KIND"
             ~doc:"Only traces with this outcome ($(b,ok), $(b,fault), \
                   $(b,timeout)).")
  in
  let min_lat_arg =
    Arg.(value & opt (some float) None
         & info [ "min-lat" ] ~docv:"US"
             ~doc:"Only traces at least $(docv) modeled microseconds slow.")
  in
  let id_arg =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"HEX"
             ~doc:"Only the trace with this 16-digit hex id (as printed by \
                   report exemplar lines).")
  in
  let max_arg =
    Arg.(value & opt int 10
         & info [ "max" ] ~docv:"N"
             ~doc:"Span trees to render (slowest first); 0 means all.")
  in
  let perfetto_arg =
    Arg.(value & opt (some string) None
         & info [ "perfetto" ] ~docv:"OUT"
             ~doc:"Instead of rendering, export the matching traces as \
                   Chrome trace-event JSON for ui.perfetto.dev.")
  in
  let run path tenant app_name outcome min_lat id max_trees perfetto =
    let id =
      Option.map
        (fun s ->
          match Flo_obs.Trace.id_of_string s with
          | Some id -> id
          | None ->
            Printf.eprintf "flopt: trace: malformed trace id %S (want 16 hex digits)\n" s;
            exit 2)
        id
    in
    let traces = ref [] in
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lineno = ref 0 in
        try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then
              match Flo_obs.Trace.of_json line with
              | Ok t -> traces := t :: !traces
              | Error msg ->
                Printf.eprintf "flopt: trace: %s, line %d: %s\n" path !lineno msg;
                exit 2
          done
        with End_of_file -> ());
    let all = List.rev !traces in
    let keep (t : Flo_obs.Trace.t) =
      (match tenant with None -> true | Some n -> t.Flo_obs.Trace.tenant = n)
      && (match app_name with None -> true | Some a -> t.Flo_obs.Trace.app = a)
      && (match outcome with None -> true | Some o -> t.Flo_obs.Trace.outcome = o)
      && (match min_lat with None -> true | Some l -> t.Flo_obs.Trace.latency_us >= l)
      && match id with None -> true | Some i -> t.Flo_obs.Trace.trace_id = i
    in
    let matching = List.filter keep all in
    match perfetto with
    | Some out ->
      let oc = open_out out in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Flo_analysis.Perfetto.write_traces oc matching);
      Printf.printf "perfetto export of %d trace(s) written to %s (open in ui.perfetto.dev)\n"
        (List.length matching) out
    | None ->
      (* slowest first — the tail is what tracing exists to explain; ties
         break by trace id so the order is total and deterministic *)
      let sorted =
        List.sort
          (fun (a : Flo_obs.Trace.t) (b : Flo_obs.Trace.t) ->
            match compare b.Flo_obs.Trace.latency_us a.Flo_obs.Trace.latency_us with
            | 0 -> compare a.Flo_obs.Trace.trace_id b.Flo_obs.Trace.trace_id
            | c -> c)
          matching
      in
      let shown =
        if max_trees <= 0 then sorted
        else
          List.filteri (fun i _ -> i < max_trees) sorted
      in
      List.iter (fun t -> Format.printf "%a@.@." Flo_obs.Trace.pp_tree t) shown;
      let represented =
        List.fold_left (fun a (t : Flo_obs.Trace.t) -> a + t.Flo_obs.Trace.count) 0
          matching
      in
      Printf.printf
        "trace file %s: %d trace(s) of %d loaded match (%d modeled requests represented, %d rendered)\n"
        path (List.length matching) (List.length all) represented (List.length shown)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ file_pos $ tenant_arg $ app_filter_arg $ outcome_arg
          $ min_lat_arg $ id_arg $ max_arg $ perfetto_arg)

let bench_diff_cmd =
  let doc =
    "Compare two flopt-bench JSON manifests (written by $(b,bench -- json \
     --out FILE)) metric by metric.  Gated metrics are deterministic modeled \
     quantities — higher is worse; with $(b,--fail-on-regress) the exit \
     status is 1 when any gated metric grew by more than the given percent."
  in
  let old_pos =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"Baseline manifest.")
  in
  let new_pos =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"Candidate manifest.")
  in
  let fail_arg =
    Arg.(value & opt (some float) None
         & info [ "fail-on-regress" ] ~docv:"PCT"
             ~doc:"Exit 1 when a gated metric regressed by more than $(docv) \
                   percent.")
  in
  let pp_delta c =
    if c.Bench_schema.delta_pct = infinity then "+inf"
    else Printf.sprintf "%+.1f" c.Bench_schema.delta_pct
  in
  let run old_path new_path fail_on_regress =
    let load path =
      match Bench_schema.load path with
      | Ok m -> m
      | Error msg ->
        Printf.eprintf "flopt: bench-diff: %s\n" msg;
        exit 2
    in
    let old_ = load old_path and new_ = load new_path in
    let d = Bench_schema.diff ~old_ ~new_ in
    let threshold = Option.value fail_on_regress ~default:0. in
    let regressed = Bench_schema.regressions ~threshold d in
    let rows =
      List.filter_map
        (fun (c : Bench_schema.change) ->
          if not c.Bench_schema.c_gated then None
          else
            Some
              [
                c.Bench_schema.c_app;
                c.Bench_schema.c_name;
                Printf.sprintf "%.4g" c.Bench_schema.old_value;
                Printf.sprintf "%.4g" c.Bench_schema.new_value;
                pp_delta c ^ "%";
                (if List.memq c regressed then "REGRESSED"
                 else if c.Bench_schema.delta_pct < 0. then "improved"
                 else "ok");
              ])
        d.Bench_schema.changes
    in
    Report.print_table ~title:"gated metrics (deterministic; higher is worse)"
      ~header:[ "app"; "metric"; "old"; "new"; "change"; "flag" ]
      rows;
    let ungated =
      List.filter (fun c -> not c.Bench_schema.c_gated) d.Bench_schema.changes
    in
    if ungated <> [] then
      Report.print_table ~title:"ungated metrics (wall clock; informational)"
        ~header:[ "app"; "metric"; "old"; "new"; "change" ]
        (List.map
           (fun (c : Bench_schema.change) ->
             [
               c.Bench_schema.c_app;
               c.Bench_schema.c_name;
               Printf.sprintf "%.4g" c.Bench_schema.old_value;
               Printf.sprintf "%.4g" c.Bench_schema.new_value;
               pp_delta c ^ "%";
             ])
           ungated);
    List.iter
      (fun (m : Bench_schema.metric) ->
        Printf.printf "added:   %s/%s\n" m.Bench_schema.app m.Bench_schema.name)
      d.Bench_schema.added;
    List.iter
      (fun (m : Bench_schema.metric) ->
        Printf.printf "removed: %s/%s\n" m.Bench_schema.app m.Bench_schema.name)
      d.Bench_schema.removed;
    Printf.printf "%d gated regression(s) beyond %.1f%%, %d improvement(s)\n"
      (List.length regressed) threshold
      (List.length (Bench_schema.improvements d));
    if fail_on_regress <> None && regressed <> [] then exit 1
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(const run $ old_pos $ new_pos $ fail_arg)

let fidelity_cmd =
  let doc =
    "Check the compiler's cost model against an actual simulated execution: \
     per-thread distinct-block counts (Step I, Eq. 4) and cross-thread \
     sharing (Step II), predicted analytically and observed from the run's \
     event stream, with per-row drift.  Without $(i,APP), sweeps the whole \
     16-application suite ($(b,--jobs) apps at a time) and prints one summary \
     row per app.  Exits 1 when any drift exceeds the tolerance."
  in
  let tolerance_arg =
    Arg.(value & opt float 0.
         & info [ "tolerance" ] ~docv:"REL"
             ~doc:"Relative-error budget per row (0.05 = 5%). Default 0: the \
                   model must match exactly.")
  in
  let predict_block_arg =
    Arg.(value & opt (some int) None
         & info [ "predict-block-elems" ] ~docv:"N"
             ~doc:"Make the predictions for block size $(docv) instead of the \
                   configured one — a deliberate model/runtime mismatch that \
                   should show up as drift.")
  in
  let sample_arg =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N"
             ~doc:"Profile-mode sampling factor applied to both the run and \
                   the prediction.")
  in
  let suite_app_arg =
    Arg.(value & pos 0 (some app_conv) None
         & info [] ~docv:"APP" ~doc:"Application name (omit to sweep the whole suite).")
  in
  let run app layout_mode scope tolerance predict_block_elems sample jobs =
    if tolerance < 0. then begin
      prerr_endline "flopt: fidelity: --tolerance must be non-negative";
      exit 2
    end;
    if sample < 1 then begin
      prerr_endline "flopt: fidelity: --sample must be positive";
      exit 2
    end;
    let layouts_for app =
      match layout_mode with
      | Default -> Experiment.default_layouts app
      | Inter -> Experiment.inter_layouts ~scope config app
      | Reindexed ->
        let outcome = Experiment.reindex_best config app in
        fun id -> List.assoc id outcome.Reindex.layouts
      | Compmapped ->
        (* compmap perturbs the iteration-to-thread assignment itself, which
           the analytical model has no parameters for *)
        prerr_endline "flopt: fidelity: --layout compmap is not predictable";
        exit 2
    in
    let fidelity_of app =
      fst
        (Experiment.fidelity ~tolerance ?predict_block_elems ~sample
           ~layouts:(layouts_for app) config app)
    in
    match app with
    | Some app ->
      let fd = fidelity_of app in
      Report.print_fidelity fd;
      if not (Flo_fidelity.Fidelity.ok fd) then exit 1
    | None ->
      (* suite mode: one self-contained fidelity join per app, fanned over
         the domain pool; rows come back in suite order for any --jobs *)
      let jobs = resolve_jobs jobs in
      let fds = Experiment.map_apps ~jobs fidelity_of Suite.all in
      let rows =
        List.map
          (fun (fd : Flo_fidelity.Fidelity.t) ->
            [
              fd.Flo_fidelity.Fidelity.app;
              string_of_int (List.length fd.Flo_fidelity.Fidelity.rows);
              string_of_int (List.length (Flo_fidelity.Fidelity.flagged fd));
              Printf.sprintf "%.4f" (Flo_fidelity.Fidelity.max_rel_drift fd);
              Printf.sprintf "%.4f" (Flo_fidelity.Fidelity.sharing_rel_drift fd);
              (if Flo_fidelity.Fidelity.ok fd then "ok" else "DRIFT");
            ])
          fds
      in
      Report.print_table
        ~title:
          (Printf.sprintf "fidelity: 16-app suite (tolerance %.3g, sample %d)" tolerance
             sample)
        ~header:[ "application"; "rows"; "flagged"; "max rel drift"; "sharing drift"; "status" ]
        rows;
      if not (List.for_all Flo_fidelity.Fidelity.ok fds) then exit 1
  in
  Cmd.v (Cmd.info "fidelity" ~doc)
    Term.(const run $ suite_app_arg $ layout_arg $ scope_arg $ tolerance_arg
          $ predict_block_arg $ sample_arg $ jobs_arg)

let chaos_cmd =
  let doc =
    "Sweep fault intensity over an application: at each scale, run the \
     default and the compiler-optimized layouts under the same seeded fault \
     plan (transient read errors, latency spikes, degraded nodes, offline \
     caches, stripe failover) and report modeled-time and L2-miss deltas \
     plus fault/retry/timeout/failover counters.  Scale 0 is the fault-free \
     reference, byte-identical to $(b,flopt run).  Identical seed and plan \
     give byte-identical results at every $(b,--jobs) setting."
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Fault-plan seed; every stochastic draw derives from it \
                   (replay-exact).")
  in
  let faults_arg =
    Arg.(value & opt string "read-error:rate=0.02;latency:rate=0.05,mult=4"
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault plan, ';'-separated clauses: \
                   read-error:rate=R[,node=N]; latency:rate=R,mult=M[,node=N]; \
                   degrade:mult=M[,node=N]; cache-off:node=N; \
                   failover:node=N[,to=N']; \
                   retry:[max=K][,base=US][,mult=M][,jitter=J][,timeout=US].")
  in
  let scales_arg =
    Arg.(value & opt (list float) [ 0.; 0.5; 1.; 2. ]
         & info [ "rates" ] ~docv:"S1,S2,..."
             ~doc:"Fault-intensity scales to sweep (0 = fault-free reference).")
  in
  let opt_int name doc =
    Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc)
  in
  let storage_nodes_arg = opt_int "storage-nodes" "Override the storage-node count." in
  let io_nodes_arg = opt_int "io-nodes" "Override the I/O-node count." in
  let compute_nodes_arg = opt_int "compute-nodes" "Override the compute-node count." in
  let block_elems_arg = opt_int "block-elems" "Override the block size in elements." in
  let run app seed faults_spec scales caching scope jobs compute_nodes io_nodes
      storage_nodes block_elems =
    let config =
      match Config.build ?compute_nodes ?io_nodes ?storage_nodes ?block_elems () with
      | Ok c -> c
      | Error e ->
        Printf.eprintf "flopt: chaos: %s\n" (Config.invalid_config_to_string e);
        exit 2
    in
    let plan =
      match Flo_faults.Fault_plan.of_string faults_spec with
      | Ok p -> Flo_faults.Fault_plan.with_seed p seed
      | Error msg ->
        Printf.eprintf "flopt: chaos: bad --faults spec: %s\n" msg;
        exit 2
    in
    if scales = [] then begin
      prerr_endline "flopt: chaos: --rates must list at least one scale";
      exit 2
    end;
    let jobs = resolve_jobs jobs in
    Printf.printf "fault plan: %s\n\n" (Flo_faults.Fault_plan.to_string plan);
    print_string (Report.degradation_summary (Experiment.inter_plan ~scope config app));
    print_newline ();
    let points =
      try Experiment.chaos ~scales ~caching ~scope ~jobs ~plan config app
      with Invalid_argument msg ->
        Printf.eprintf "flopt: chaos: %s\n" msg;
        exit 2
    in
    Report.print_chaos ~app:app.App.name ~seed points
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ app_arg $ seed_arg $ faults_arg $ scales_arg $ caching_arg
          $ scope_arg $ jobs_arg $ compute_nodes_arg $ io_nodes_arg
          $ storage_nodes_arg $ block_elems_arg)

(* traffic/slo shared plumbing: both commands drive the same open-loop
   engine, so they share every workload argument.  APP-MIX is parsed by
   hand (not Arg.conv) so an unknown app or malformed spec exits 2 like
   every other flopt usage error, not cmdliner's 124. *)
module Traffic_args = struct
  let mix_pos n =
    Arg.(value & pos n string "suite"
         & info [] ~docv:"APP-MIX"
             ~doc:"Comma-separated application names in popularity order \
                   (head = most popular), or $(b,suite) for the whole \
                   16-application suite.")

  let tenants =
    Arg.(value & opt int 64 & info [ "tenants" ] ~docv:"N" ~doc:"Number of tenants.")

  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"S"
             ~doc:"Master seed; every tenant draws from its own splitmix64 \
                   substream derived from it (replay-exact).")

  let duration =
    Arg.(value & opt float 10.
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Modeled window per tenant.")

  let rate =
    Arg.(value & opt float 2.
         & info [ "rate" ] ~docv:"JOBS/S" ~doc:"Mean job arrival rate per tenant.")

  let zipf =
    Arg.(value & opt float 1.1
         & info [ "zipf-s" ] ~docv:"S"
             ~doc:"Zipf exponent of app popularity over the mix (higher = \
                   more skew towards the head app).")

  let opt_share =
    Arg.(value & opt float 0.5
         & info [ "opt-share" ] ~docv:"FRAC"
             ~doc:"Fraction of tenants given the compiler-optimized layouts.")

  let noisy =
    Arg.(value & opt float 1.
         & info [ "noisy" ] ~docv:"MULT"
             ~doc:"Arrival-rate multiplier for tenant 0 (the noisy neighbor); \
                   1 disables it.")

  let burst =
    Arg.(value & opt (some (pair float float)) None
         & info [ "burst" ] ~docv:"ON,OFF"
             ~doc:"Use an on/off bursty arrival process with mean on/off \
                   sojourns of $(docv) modeled seconds (mean rate is \
                   preserved).  Default: plain Poisson.")

  let sample =
    Arg.(value & opt int 8
         & info [ "sample" ] ~docv:"N"
             ~doc:"Profile-mode sampling factor for service-kernel compilation.")

  let max_rows =
    Arg.(value & opt int 8
         & info [ "max-rows" ] ~docv:"N"
             ~doc:"Per-tenant table rows to print (top $(docv) by requests).")

  let windows =
    Arg.(value & opt int 1
         & info [ "windows" ] ~docv:"N"
             ~doc:"Split the modeled period into $(docv) SLO evaluation \
                   windows; congestion is modeled per window.")

  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault plan baked into the service kernels (same grammar \
                   as $(b,flopt chaos)); retry latencies reach the modeled \
                   clocks and failed reads burn the error budget.")

  let fault_seed =
    Arg.(value & opt int 42
         & info [ "fault-seed" ] ~docv:"S" ~doc:"Seed for the $(b,--faults) plan.")

  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Enable request-level sampled tracing and write the sampled \
                   traces as JSONL to $(docv) (render with $(b,flopt trace)).  \
                   Off by default; untraced runs pay zero overhead and print \
                   byte-identical reports.")

  let sample_rate =
    Arg.(value
         & opt int Flo_traffic.Tracer.default.Flo_traffic.Tracer.sample_rate
         & info [ "sample-rate" ] ~docv:"N"
             ~doc:"Head-sample 1 in $(docv) requests per tenant.  Tail \
                   sampling (SLO-breaching, faulted/timed-out, and \
                   per-tenant-window slowest requests) is always on.  Only \
                   meaningful with $(b,--trace-out).")

  let trace_breach =
    Arg.(value
         & opt float Flo_traffic.Tracer.default.Flo_traffic.Tracer.breach_us
         & info [ "trace-breach-us" ] ~docv:"US"
             ~doc:"Tail-sample every request slower than $(docv) modeled \
                   microseconds.  Only meaningful with $(b,--trace-out).")

  let shed_arg ~default =
    Arg.(value & opt string default
         & info [ "shed" ] ~docv:"POLICY"
             ~doc:"Overload shedding policy: $(b,off), $(b,fail-fast) \
                   (reject excess jobs), $(b,priority) (shed the default \
                   cohort first, protecting optimized tenants), or \
                   $(b,brownout) (serve excess jobs degraded instead of \
                   rejecting them).")

  let shed = shed_arg ~default:"off"

  let capacity =
    Arg.(value & opt float 1.0
         & info [ "capacity" ] ~docv:"UTIL"
             ~doc:"Admission capacity target: admitted service demand is \
                   kept at or under $(docv) x the window length per (shard, \
                   window), bounding accepted requests' congestion \
                   multiplier by 1+$(docv).  Only meaningful with \
                   $(b,--shed).")

  let breaker =
    Arg.(value & opt (some string) None
         & info [ "breaker" ] ~docv:"SPEC"
             ~doc:"Arm a per-storage-node circuit breaker, \
                   $(b,open=R,close=R,cooldown=W,probe=F[,node=N]) (any \
                   subset of keys; defaults open=0.1, close=0.02, \
                   cooldown=2, probe=0.2, all nodes).  An open node's \
                   traffic takes the failover path to the next healthy \
                   node.")

  (* --shed off with no --breaker means no overload subsystem at all: the
     engine takes the pre-overload code path and reports stay
     byte-identical *)
  let overload_params ~cmd shed_spec capacity breaker_spec =
    let breaker =
      match breaker_spec with
      | None -> None
      | Some s -> (
        match Flo_faults.Breaker.of_string s with
        | Ok b -> Some b
        | Error msg ->
          Printf.eprintf "flopt: %s: bad --breaker spec: %s\n" cmd msg;
          exit 2)
    in
    let shed =
      match shed_spec with
      | "off" -> None
      | s -> (
        match Flo_traffic.Overload.policy_of_string s with
        | Ok p -> Some p
        | Error msg ->
          Printf.eprintf "flopt: %s: bad --shed policy: %s\n" cmd msg;
          exit 2)
    in
    match (shed, breaker) with
    | None, None -> None
    | _ ->
      let o =
        {
          Flo_traffic.Overload.default with
          Flo_traffic.Overload.shed;
          (* breaker-only mode routes but never sheds *)
          capacity = (if shed = None then infinity else capacity);
          breaker;
        }
      in
      (match Flo_traffic.Overload.validate o with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "flopt: %s: %s\n" cmd msg;
        exit 2);
      Some o

  (* atomic like Sink.with_jsonl: readers never observe a half-written file *)
  let write_traces path traces =
    let tmp = path ^ ".part" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun t ->
            output_string oc (Flo_obs.Trace.to_json t);
            output_char oc '\n')
          traces);
    Sys.rename tmp path;
    Printf.printf "%d sampled trace(s) written to %s (render with `flopt trace %s`)\n"
      (List.length traces) path path

  let parse_mix ~cmd mix_spec =
    if mix_spec = "suite" then Suite.all
    else
      List.map
        (fun name ->
          match Suite.find (String.trim name) with
          | app -> app
          | exception Not_found ->
            Printf.eprintf "flopt: %s: unknown application %S (try `flopt apps')\n"
              cmd name;
            exit 2)
        (String.split_on_char ',' mix_spec)

  (* precise flag-level validation ahead of Engine.validate: the engine's
     messages name record fields, these name the flags the user typed *)
  let check_flag ~cmd flag ok render v =
    if not (ok v) then begin
      Printf.eprintf "flopt: %s: --%s must be positive (got %s)\n" cmd flag (render v);
      exit 2
    end

  let params ~cmd mix_spec tenants seed duration rate zipf_s opt_share noisy burst
      sample windows faults_spec fault_seed trace_out sample_rate trace_breach_us
      ?(shed_spec = "off") ?capacity_arg ?breaker_spec () =
    check_flag ~cmd "duration" (fun v -> v > 0.) (Printf.sprintf "%g") duration;
    check_flag ~cmd "rate" (fun v -> v > 0.) (Printf.sprintf "%g") rate;
    check_flag ~cmd "windows" (fun v -> v >= 1) string_of_int windows;
    let mix = parse_mix ~cmd mix_spec in
    let process =
      match burst with
      | None -> Flo_traffic.Arrivals.Poisson
      | Some (on_s, off_s) -> Flo_traffic.Arrivals.Bursty { on_s; off_s }
    in
    let faults =
      match faults_spec with
      | None -> Flo_faults.Fault_plan.empty
      | Some spec -> (
        match Flo_faults.Fault_plan.of_string spec with
        | Ok p -> Flo_faults.Fault_plan.with_seed p fault_seed
        | Error msg ->
          Printf.eprintf "flopt: %s: bad --faults spec: %s\n" cmd msg;
          exit 2)
    in
    let params =
      {
        (Flo_traffic.Engine.default_params ~mix) with
        Flo_traffic.Engine.tenants;
        seed;
        duration_s = duration;
        rate;
        zipf_s;
        opt_share;
        noisy_boost = noisy;
        process;
        sample;
        windows;
        faults;
        trace =
          (match trace_out with
          | None -> None
          | Some _ ->
            Some
              {
                Flo_traffic.Tracer.default with
                Flo_traffic.Tracer.sample_rate;
                breach_us = trace_breach_us;
              });
        overload =
          overload_params ~cmd shed_spec
            (Option.value capacity_arg ~default:1.0)
            breaker_spec;
      }
    in
    (match Flo_traffic.Engine.validate params with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "flopt: %s: %s\n" cmd msg;
      exit 2);
    params

  let parse_slo ~cmd spec =
    match Flo_obs.Slo.parse spec with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "flopt: %s: bad SLO spec %S: %s\n" cmd spec msg;
      exit 2
end

let traffic_cmd =
  let doc =
    "Drive an open-loop multi-tenant workload: tenants pick applications \
     Zipfian-by-rank from $(i,APP-MIX), jobs arrive as seeded Poisson (or \
     on/off bursty) processes, and each tenant runs the default or the \
     compiler-optimized layouts.  The hierarchy is sharded by storage node \
     and simulated on the worker-domain pool with batched service kernels, \
     so hundreds of millions of modeled requests replay in seconds.  With \
     $(b,--slo) the run is also scored against a service-level objective \
     (burn rates, error budget, multi-window alerts).  Everything except \
     the $(b,[wall]) line is byte-identical for a given seed at every \
     $(b,--jobs) value."
  in
  let slo_arg =
    Arg.(value & opt (some string) None
         & info [ "slo" ] ~docv:"SPEC"
             ~doc:"Score the run against an SLO, e.g. $(b,p99<800us\\@99.9) \
                   (p99 latency under 800 us in 99.9% of windows) or \
                   $(b,err<0.5%\\@99).  See $(b,flopt slo).")
  in
  let run mix_spec tenants seed duration rate zipf_s opt_share noisy burst sample
      max_rows windows faults_spec fault_seed trace_out sample_rate trace_breach
      shed capacity breaker slo jobs =
    let slo_spec = Option.map (Traffic_args.parse_slo ~cmd:"traffic") slo in
    let params =
      Traffic_args.params ~cmd:"traffic" mix_spec tenants seed duration rate zipf_s
        opt_share noisy burst sample windows faults_spec fault_seed trace_out
        sample_rate trace_breach ~shed_spec:shed ~capacity_arg:capacity
        ?breaker_spec:breaker ()
    in
    let jobs = resolve_jobs jobs in
    let result = Flo_traffic.Engine.simulate ~jobs ~config params in
    Flo_traffic.Traffic_report.print ~max_rows result;
    (match slo_spec with
    | None -> ()
    | Some spec ->
      let e = Flo_traffic.Slo_eval.evaluate spec result in
      print_newline ();
      Flo_traffic.Slo_report.print ~max_rows result e);
    Option.iter
      (fun path ->
        Traffic_args.write_traces path result.Flo_traffic.Engine.traces)
      trace_out
  in
  Cmd.v (Cmd.info "traffic" ~doc)
    Term.(const run $ Traffic_args.mix_pos 0 $ Traffic_args.tenants
          $ Traffic_args.seed $ Traffic_args.duration $ Traffic_args.rate
          $ Traffic_args.zipf $ Traffic_args.opt_share $ Traffic_args.noisy
          $ Traffic_args.burst $ Traffic_args.sample $ Traffic_args.max_rows
          $ Traffic_args.windows $ Traffic_args.faults $ Traffic_args.fault_seed
          $ Traffic_args.trace_out $ Traffic_args.sample_rate
          $ Traffic_args.trace_breach $ Traffic_args.shed $ Traffic_args.capacity
          $ Traffic_args.breaker $ slo_arg $ jobs_arg)

let slo_cmd =
  let doc =
    "Evaluate a service-level objective over the multi-tenant traffic \
     engine: the modeled period is split into windows, each window is \
     scored good or bad against the objective (latency threshold at a \
     quantile, or error-rate ceiling), and burn rates, error-budget \
     remaining, and fast/slow burn-rate alerts are reported per tenant, \
     per layout cohort, and fleet-wide.  All clocks are modeled, so the \
     report is byte-identical at every $(b,--jobs) value.  With \
     $(b,--faults), failed reads burn the error budget and retry latency \
     burns the latency budget."
  in
  let spec_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC"
             ~doc:"SLO spec: $(b,pQ<Nunit\\@T) (e.g. $(b,p99<800us\\@99.9): the \
                   p99 latency stays under 800 us in 99.9% of windows; units \
                   us/ms/s) or $(b,err<N%\\@T) (e.g. $(b,err<0.5%\\@99)).")
  in
  let run spec_str mix_spec tenants seed duration rate zipf_s opt_share noisy burst
      sample max_rows windows faults_spec fault_seed trace_out sample_rate
      trace_breach shed capacity breaker jobs =
    let spec = Traffic_args.parse_slo ~cmd:"slo" spec_str in
    let params =
      Traffic_args.params ~cmd:"slo" mix_spec tenants seed duration rate zipf_s
        opt_share noisy burst sample windows faults_spec fault_seed trace_out
        sample_rate trace_breach ~shed_spec:shed ~capacity_arg:capacity
        ?breaker_spec:breaker ()
    in
    let jobs = resolve_jobs jobs in
    let result = Flo_traffic.Engine.simulate ~jobs ~config params in
    let e = Flo_traffic.Slo_eval.evaluate spec result in
    Flo_traffic.Slo_report.print ~max_rows result e;
    Option.iter
      (fun path ->
        Traffic_args.write_traces path result.Flo_traffic.Engine.traces)
      trace_out;
    if not e.Flo_traffic.Slo_eval.fleet.Flo_traffic.Slo_eval.verdict
             .Flo_obs.Slo.compliant
    then exit 1
  in
  Cmd.v (Cmd.info "slo" ~doc)
    Term.(const run $ spec_pos $ Traffic_args.mix_pos 1 $ Traffic_args.tenants
          $ Traffic_args.seed $ Traffic_args.duration $ Traffic_args.rate
          $ Traffic_args.zipf $ Traffic_args.opt_share $ Traffic_args.noisy
          $ Traffic_args.burst $ Traffic_args.sample $ Traffic_args.max_rows
          $ Traffic_args.windows $ Traffic_args.faults $ Traffic_args.fault_seed
          $ Traffic_args.trace_out $ Traffic_args.sample_rate
          $ Traffic_args.trace_breach $ Traffic_args.shed $ Traffic_args.capacity
          $ Traffic_args.breaker $ jobs_arg)

let overload_cmd =
  let doc =
    "Sweep offered load over the multi-tenant traffic engine and compare \
     the uncontrolled open-loop baseline against the overload-controlled \
     run at each multiplier of $(b,--rate): baseline p99 (which collapses \
     — congestion grows linearly with offered demand), accepted-request \
     p99, goodput and shed fraction under admission control.  All modeled, \
     so the table and verdict are byte-identical at every $(b,--jobs) \
     value.  Exits 1 unless degradation is graceful: bounded \
     accepted-request p99 and near-peak goodput at the highest load."
  in
  let loads_arg =
    Arg.(value & opt string "1,2,4,8,16,32"
         & info [ "loads" ] ~docv:"M1,M2,..."
             ~doc:"Comma-separated offered-load multipliers applied to \
                   $(b,--rate), in sweep order.")
  in
  let run mix_spec tenants seed duration rate zipf_s opt_share noisy burst sample
      windows faults_spec fault_seed shed capacity breaker loads jobs =
    let cmd = "overload" in
    let load_list =
      List.map
        (fun s ->
          match int_of_string_opt (String.trim s) with
          | Some m when m >= 1 -> m
          | _ ->
            Printf.eprintf
              "flopt: %s: bad --loads entry %S (positive integers)\n" cmd s;
            exit 2)
        (String.split_on_char ',' loads)
    in
    let params =
      Traffic_args.params ~cmd mix_spec tenants seed duration rate zipf_s
        opt_share noisy burst sample windows faults_spec fault_seed None
        Flo_traffic.Tracer.default.Flo_traffic.Tracer.sample_rate
        Flo_traffic.Tracer.default.Flo_traffic.Tracer.breach_us ~shed_spec:shed
        ~capacity_arg:capacity ?breaker_spec:breaker ()
    in
    let o =
      match params.Flo_traffic.Engine.overload with
      | Some o -> o
      | None ->
        Printf.eprintf
          "flopt: %s: overload controls are off (pass --shed or --breaker)\n" cmd;
        exit 2
    in
    let jobs = resolve_jobs jobs in
    (* per load step: the same (seed, mix, arrivals) with rate scaled —
       first open-loop (no controls), then controlled; determinism means
       both see byte-identical arrival plans *)
    let rows =
      List.map
        (fun m ->
          let pm =
            {
              params with
              Flo_traffic.Engine.rate =
                params.Flo_traffic.Engine.rate *. float_of_int m;
              overload = None;
            }
          in
          let base = Flo_traffic.Engine.simulate ~jobs ~config pm in
          let ctl =
            Flo_traffic.Engine.simulate ~jobs ~config
              { pm with Flo_traffic.Engine.overload = Some o }
          in
          (m, base, ctl))
        load_list
    in
    let stats (ctl : Flo_traffic.Engine.result) =
      match ctl.Flo_traffic.Engine.overload with
      | Some ol -> ol
      | None -> assert false
    in
    print_endline
      (Flo_engine.Report.table
         ~header:
           [ "load"; "offered rps"; "base p99 us"; "acc p99 us"; "goodput rps";
             "shed"; "browned"; "retry-supp" ]
         (List.map
            (fun (m, (base : Flo_traffic.Engine.result), ctl) ->
              let ol = stats ctl in
              [
                Printf.sprintf "%dx" m;
                Printf.sprintf "%.0f" base.Flo_traffic.Engine.offered_rps;
                Printf.sprintf "%.1f" base.Flo_traffic.Engine.agg_p99_us;
                Printf.sprintf "%.1f" ctl.Flo_traffic.Engine.agg_p99_us;
                Printf.sprintf "%.0f" ol.Flo_traffic.Engine.ol_goodput_rps;
                Printf.sprintf "%.1f%%"
                  (100. *. ol.Flo_traffic.Engine.ol_shed_fraction);
                string_of_int ol.Flo_traffic.Engine.ol_browned_jobs;
                string_of_int ol.Flo_traffic.Engine.ol_retry_suppressed_windows;
              ])
            rows));
    (* graceful degradation: accepted-request p99 stays bounded across the
       sweep (admitted multipliers are capped at 1+capacity, so growth is
       bounded by that cap's headroom over the lightest load) and goodput
       at the heaviest load holds near its peak, while the uncontrolled
       baseline's p99 grows without bound *)
    let acc_p99 (_, _, ctl) = ctl.Flo_traffic.Engine.agg_p99_us in
    let goodput row =
      let _, _, ctl = row in
      (stats ctl).Flo_traffic.Engine.ol_goodput_rps
    in
    let first = List.hd rows in
    let last = List.nth rows (List.length rows - 1) in
    let _, base_last, _ = last in
    let p99_growth =
      if acc_p99 first > 0. then acc_p99 last /. acc_p99 first else 1.
    in
    let peak = List.fold_left (fun a r -> Float.max a (goodput r)) 0. rows in
    let goodput_floor = if peak > 0. then goodput last /. peak else 1. in
    let collapse =
      if acc_p99 last > 0. then
        base_last.Flo_traffic.Engine.agg_p99_us /. acc_p99 last
      else 1.
    in
    let graceful = p99_growth <= 2.5 && goodput_floor >= 0.75 in
    print_newline ();
    Printf.printf
      "overload sweep %s tenants=%d seed=%d %s loads=%s: p99_growth=%.2fx \
       goodput_floor=%.2f collapse=%.1fx verdict=%s\n"
      (Flo_traffic.Traffic_report.mix_names params)
      params.Flo_traffic.Engine.tenants params.Flo_traffic.Engine.seed
      (Flo_traffic.Overload.describe o)
      (String.concat "," (List.map string_of_int load_list))
      p99_growth goodput_floor collapse
      (if graceful then "GRACEFUL" else "COLLAPSED");
    if not graceful then exit 1
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(const run $ Traffic_args.mix_pos 0 $ Traffic_args.tenants
          $ Traffic_args.seed $ Traffic_args.duration $ Traffic_args.rate
          $ Traffic_args.zipf $ Traffic_args.opt_share $ Traffic_args.noisy
          $ Traffic_args.burst $ Traffic_args.sample $ Traffic_args.windows
          $ Traffic_args.faults $ Traffic_args.fault_seed
          $ Traffic_args.shed_arg ~default:"fail-fast" $ Traffic_args.capacity
          $ Traffic_args.breaker $ loads_arg $ jobs_arg)

let drift_cmd =
  let doc =
    "Watch for layout drift: compare observation windows of a workload \
     against the baseline the compiler-optimized layouts were built for \
     (per-layer miss rates, cross-thread sharing and its matrix, \
     model-vs-run fidelity) and recommend re-running the layout pass when \
     the windowed score clears the hysteresis thresholds.  Without \
     $(i,APP), sweeps the whole 16-application suite.  Exits 1 when \
     re-layout is recommended anywhere."
  in
  let suite_app_arg =
    Arg.(value & pos 0 (some app_conv) None
         & info [] ~docv:"APP" ~doc:"Application name (omit to sweep the whole suite).")
  in
  let mapping_arg =
    Arg.(value & opt int 0
         & info [ "mapping" ] ~docv:"SEED"
             ~doc:"Observe the workload under the pseudo-random \
                   thread-to-node mapping of $(docv); 0 keeps the baseline \
                   mapping.")
  in
  let shifted_arg =
    Arg.(value & flag
         & info [ "shifted" ]
             ~doc:"Synthesize a phase-shifted workload: the observation \
                   windows access data laid out row-major (the original \
                   file layouts) instead of the layouts the pass optimized \
                   for this phase — the access pattern the installed \
                   layouts no longer match.")
  in
  let windows_arg =
    Arg.(value & opt int 4
         & info [ "windows" ] ~docv:"N"
             ~doc:"Observation windows to fold through the detector.")
  in
  let sample_arg =
    Arg.(value & opt int 1
         & info [ "sample" ] ~docv:"N" ~doc:"Profile-mode sampling factor.")
  in
  let enter_arg =
    Arg.(value & opt float Flo_fidelity.Drift.default_config.Flo_fidelity.Drift.enter
         & info [ "enter" ] ~docv:"SCORE"
             ~doc:"Score a window must reach to count towards recommending.")
  in
  let exit_arg =
    Arg.(value & opt float Flo_fidelity.Drift.default_config.Flo_fidelity.Drift.exit_
         & info [ "exit" ] ~docv:"SCORE"
             ~doc:"Score a window must stay at or under to count towards \
                   clearing.")
  in
  let streak_arg =
    Arg.(value
         & opt int
             Flo_fidelity.Drift.default_config.Flo_fidelity.Drift.enter_streak
         & info [ "streak" ] ~docv:"N"
             ~doc:"Consecutive qualifying windows needed to flip the \
                   recommendation (both directions).")
  in
  let run app mapping_seed shifted windows sample enter exit_ streak jobs =
    if windows < 1 then begin
      prerr_endline "flopt: drift: --windows must be positive";
      exit 2
    end;
    if sample < 1 then begin
      prerr_endline "flopt: drift: --sample must be positive";
      exit 2
    end;
    if mapping_seed < 0 then begin
      prerr_endline "flopt: drift: --mapping must be non-negative";
      exit 2
    end;
    let dconfig =
      {
        Flo_fidelity.Drift.enter;
        exit_;
        enter_streak = streak;
        exit_streak = streak;
      }
    in
    (match Flo_fidelity.Drift.validate_config dconfig with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "flopt: drift: %s\n" msg;
      exit 2);
    let mapping =
      if mapping_seed = 0 then None
      else Some (Experiment.random_mapping ~seed:mapping_seed config)
    in
    let watch app =
      let layouts = Experiment.inter_layouts config app in
      let observed_layouts =
        if shifted then Experiment.default_layouts app else layouts
      in
      let baseline = Experiment.drift_signal ~sample ~layouts config app in
      let observed =
        Experiment.drift_signal ?mapping ~sample ~layouts:observed_layouts config
          app
      in
      let detector = Flo_fidelity.Drift.create ~config:dconfig ~baseline () in
      (* every window of this run sees the same (deterministic) shifted
         workload; the fold still exercises the streak hysteresis *)
      let rec fold d n = if n = 0 then d else fold (Flo_fidelity.Drift.observe d observed) (n - 1) in
      fold detector windows
    in
    let apps = match app with Some a -> [ a ] | None -> Suite.all in
    let jobs = resolve_jobs jobs in
    let detectors = Experiment.map_apps ~jobs watch apps in
    let width =
      List.fold_left (fun acc a -> max acc (String.length a.App.name)) 0 apps
    in
    List.iter2
      (fun a d ->
        Printf.printf "%-*s %s\n" width a.App.name
          (Flo_fidelity.Drift.status_line d))
      apps detectors;
    let any = List.exists Flo_fidelity.Drift.recommended detectors in
    print_endline
      (Printf.sprintf "drift verdict apps=%d windows=%d mapping=%d shifted=%b: %s"
         (List.length apps) windows mapping_seed shifted
         (if any then "RE-LAYOUT RECOMMENDED" else "no drift"));
    if any then exit 1
  in
  Cmd.v (Cmd.info "drift" ~doc)
    Term.(const run $ suite_app_arg $ mapping_arg $ shifted_arg $ windows_arg
          $ sample_arg $ enter_arg $ exit_arg $ streak_arg $ jobs_arg)

let topology_cmd =
  let doc = "Print the default (scaled Table 1) system configuration." in
  let run () =
    Format.printf "%a@." Flo_storage.Topology.pp config.Config.topology;
    Printf.printf "block = %d elements; client buffer = %d blocks/thread\n"
      config.Config.topology.Flo_storage.Topology.block_elems config.Config.client_buffer_blocks
  in
  Cmd.v (Cmd.info "topology" ~doc) Term.(const run $ const ())

let () =
  let doc = "compiler-directed file layout optimization for hierarchical storage (SC'12 reproduction)" in
  let info = Cmd.info "flopt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ apps_cmd; plan_cmd; run_cmd; bench_cmd; analyze_cmd; bench_diff_cmd;
            chaos_cmd; fidelity_cmd; drift_cmd; layout_cmd; trace_csv_cmd;
            trace_cmd; traffic_cmd; slo_cmd; overload_cmd; topology_cmd ]))
