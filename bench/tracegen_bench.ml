(* Micro-benchmark for the trace-generation fast path: times
   Tracegen.nest_streams (strength-reduced cursors) against
   Tracegen.reference_streams (the retained naive per-element generator)
   over the 16-app suite, default and inter-node layouts.

     dune exec --profile release bench/tracegen_bench.exe [-- sample N] *)

open Flo_storage
open Flo_workloads
open Flo_engine

let config = Config.default

let time f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  let sample =
    match Array.to_list Sys.argv with
    | [ _; "sample"; n ] -> (match int_of_string_opt n with Some n when n >= 1 -> n | _ -> 1)
    | _ -> 1
  in
  let topo = config.Config.topology in
  let block_elems = topo.Topology.block_elems in
  let threads = Config.threads config in
  let blocks_per_thread = config.Config.blocks_per_thread in
  Printf.printf "%-10s %-8s %12s %12s %8s\n" "app" "layout" "naive (ms)" "fast (ms)" "speedup";
  let tot_naive = ref 0. and tot_fast = ref 0. in
  List.iter
    (fun app ->
      List.iter
        (fun (mode, layouts) ->
          let gen streams () =
            List.iter
              (fun nest ->
                ignore
                  (streams ~layouts ~block_elems ~threads ~blocks_per_thread ~sample nest))
              app.App.program.Flo_poly.Program.nests
          in
          let naive =
            time (gen (fun ~layouts ~block_elems ~threads ~blocks_per_thread ~sample n ->
                Tracegen.reference_streams ~layouts ~block_elems ~threads
                  ~blocks_per_thread ~sample n))
          in
          let fast =
            time (gen (fun ~layouts ~block_elems ~threads ~blocks_per_thread ~sample n ->
                Tracegen.nest_streams ~layouts ~block_elems ~threads ~blocks_per_thread
                  ~sample n))
          in
          tot_naive := !tot_naive +. naive;
          tot_fast := !tot_fast +. fast;
          Printf.printf "%-10s %-8s %12.2f %12.2f %7.2fx\n" app.App.name mode
            (naive *. 1e3) (fast *. 1e3) (naive /. Float.max 1e-9 fast))
        [
          ("default", Experiment.default_layouts app);
          ("inter", Experiment.inter_layouts config app);
        ])
    Suite.all;
  Printf.printf "%-10s %-8s %12.2f %12.2f %7.2fx\n" "TOTAL" "" (!tot_naive *. 1e3)
    (!tot_fast *. 1e3)
    (!tot_naive /. Float.max 1e-9 !tot_fast)
