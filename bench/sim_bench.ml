(* Micro-benchmark for the simulation kernel: times the closed-loop replay
   (client buffers + hierarchy + disks) of the production flat kernel
   (Flat_lru-backed Lru, devirtualized Hierarchy hot path) against the
   retained reference kernel (Lru.reference closures through the generic
   dispatch path) over the 16-app suite, default and inter-node layouts.
   Streams are pregenerated, so tracegen cost is excluded; both kernels
   must report the same modeled elapsed time or the run aborts.

     dune exec --profile release bench/sim_bench.exe [-- sample N] [reps N] *)

open Flo_workloads
open Flo_engine

let config = Config.default

let () =
  let sample = ref 8 and reps = ref 3 in
  let rec parse = function
    | [] -> ()
    | "sample" :: n :: rest ->
      (match int_of_string_opt n with Some n when n >= 1 -> sample := n | _ -> ());
      parse rest
    | "reps" :: n :: rest ->
      (match int_of_string_opt n with Some n when n >= 1 -> reps := n | _ -> ());
      parse rest
    | _ :: rest -> parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sample = !sample and reps = !reps in
  Printf.printf "sim_bench: closed-loop kernel, sample %d, best of %d\n" sample reps;
  Printf.printf "%-10s %-8s %12s %12s %8s\n" "app" "layout" "ref (ms)" "fast (ms)"
    "speedup";
  let tot_ref = ref 0. and tot_fast = ref 0. in
  let tot_requests = ref 0 in
  List.iter
    (fun app ->
      List.iter
        (fun (mode, layouts) ->
          let p = Kernel_bench.prepare ~config ~layouts ~sample app in
          let fast = Kernel_bench.time ~reps Kernel_bench.Fast p in
          let refr = Kernel_bench.time ~reps Kernel_bench.Reference p in
          if fast.Kernel_bench.elapsed_us <> refr.Kernel_bench.elapsed_us then begin
            Printf.eprintf
              "sim_bench: kernels disagree on %s/%s: fast %.17g us, ref %.17g us\n"
              app.App.name mode fast.Kernel_bench.elapsed_us
              refr.Kernel_bench.elapsed_us;
            exit 1
          end;
          tot_ref := !tot_ref +. refr.Kernel_bench.wall_s;
          tot_fast := !tot_fast +. fast.Kernel_bench.wall_s;
          tot_requests := !tot_requests + fast.Kernel_bench.block_requests;
          Printf.printf "%-10s %-8s %12.2f %12.2f %7.2fx\n" app.App.name mode
            (refr.Kernel_bench.wall_s *. 1e3)
            (fast.Kernel_bench.wall_s *. 1e3)
            (refr.Kernel_bench.wall_s /. Float.max 1e-9 fast.Kernel_bench.wall_s))
        [
          ("default", Experiment.default_layouts app);
          ("inter", Experiment.inter_layouts config app);
        ])
    Suite.all;
  Printf.printf "%-10s %-8s %12.2f %12.2f %7.2fx\n" "TOTAL" "" (!tot_ref *. 1e3)
    (!tot_fast *. 1e3)
    (!tot_ref /. Float.max 1e-9 !tot_fast);
  Printf.printf "modeled results identical across kernels\n";
  Printf.printf "blocks_per_sec: %.3e (reference %.3e)\n"
    (float_of_int !tot_requests /. Float.max 1e-9 !tot_fast)
    (float_of_int !tot_requests /. Float.max 1e-9 !tot_ref)
