(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus two ablations, and measures the pass's
   compile-time cost with bechamel.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- table2 fig7a    # selected experiments

   Absolute numbers are modeled (scaled system, see DESIGN.md); the shapes —
   per-app benefit groups, orderings, averages — are compared against the
   paper's in EXPERIMENTS.md. *)

open Flo_storage
open Flo_core
open Flo_workloads
open Flo_engine

let config = Config.default

let apps = Suite.all

(* memoized per-app default and inter runs under the default config *)
let default_runs = Hashtbl.create 16
let inter_runs = Hashtbl.create 16

let default_run app =
  match Hashtbl.find_opt default_runs app.App.name with
  | Some r -> r
  | None ->
    let r = Experiment.default_run config app in
    Hashtbl.add default_runs app.App.name r;
    r

let inter_run app =
  match Hashtbl.find_opt inter_runs app.App.name with
  | Some r -> r
  | None ->
    let r = Experiment.inter_run config app in
    Hashtbl.add inter_runs app.App.name r;
    r

let norm app r = Experiment.normalized ~base:(default_run app) r

let improvement_pct norms = 100. *. (1. -. Report.mean norms)

(* ---- Table 1: system configuration ----------------------------------- *)

let table1 () =
  let t = config.Config.topology in
  Report.print_table ~title:"Table 1: system parameters (scaled; paper values in parentheses)"
    ~header:[ "parameter"; "value" ]
    [
      [ "compute nodes"; string_of_int t.Topology.compute_nodes ^ " (64)" ];
      [ "I/O nodes"; string_of_int t.Topology.io_nodes ^ " (16)" ];
      [ "storage nodes"; string_of_int t.Topology.storage_nodes ^ " (4)" ];
      [ "data striping"; "all storage nodes, round-robin (same)" ];
      [ "block = stripe"; string_of_int t.Topology.block_elems ^ " elements (128 kB)" ];
      [ "I/O cache"; string_of_int t.Topology.io_cache_blocks ^ " blocks (1 GB)" ];
      [ "storage cache"; string_of_int t.Topology.storage_cache_blocks ^ " blocks (2 GB)" ];
      [ "disk"; Printf.sprintf "%d RPM model (10,000 RPM)" config.Config.disk_params.Disk.rpm ];
    ]

(* ---- Table 2: default execution ---------------------------------------- *)

let table2 () =
  let rows =
    List.map
      (fun app ->
        let r = default_run app in
        [
          app.App.name;
          Report.pct (Run.l1_miss_per_element r);
          Report.pct (Run.l2_miss_per_element r);
          Report.ms r.Run.elapsed_us;
        ])
      apps
  in
  Report.print_table
    ~title:"Table 2: default execution (miss rates per element access, modeled time)"
    ~header:[ "application"; "I/O cache miss %"; "storage miss %"; "time (ms)" ]
    rows

(* ---- Table 3: normalized misses after optimization ---------------------- *)

let table3 () =
  let rows =
    List.map
      (fun app ->
        let d = default_run app and o = inter_run app in
        let ratio f = f o /. max 1e-12 (f d) in
        [
          app.App.name;
          Report.f2 (ratio Run.l1_miss_per_element);
          Report.f2 (ratio Run.l2_miss_per_element);
        ])
      apps
  in
  Report.print_table
    ~title:"Table 3: cache misses after optimization (normalized to Table 2)"
    ~header:[ "application"; "I/O caches"; "storage caches" ]
    rows

(* ---- Fig 7(a): normalized execution times ------------------------------- *)

let fig7a () =
  let norms = List.map (fun app -> norm app (inter_run app)) apps in
  let rows =
    List.map2
      (fun app n -> [ app.App.name; Report.f3 n; App.group_to_string app.App.group ])
      apps norms
  in
  Report.print_table ~title:"Fig 7(a): normalized execution time (inter-node layout)"
    ~header:[ "application"; "normalized"; "expected group" ]
    rows;
  Printf.printf "average improvement: %.1f%% (mean of the paper's per-group ranges: ~14%%)\n\n"
    (improvement_pct norms)

(* ---- Fig 7(b): thread-to-compute-node mappings --------------------------- *)

let fig7b () =
  let rows =
    List.map
      (fun app ->
        let cells =
          List.map
            (fun seed ->
              let r =
                if seed = 0 then inter_run app
                else
                  Experiment.inter_run
                    ~mapping:(Experiment.random_mapping ~seed config)
                    config app
              in
              Report.f3 (norm app r))
            [ 0; 1; 2; 3 ]
        in
        (app.App.name :: cells)
        @ [ (if app.App.master_slave then "master-slave" else "data-parallel") ])
      apps
  in
  Report.print_table ~title:"Fig 7(b): sensitivity to thread mapping (normalized times)"
    ~header:[ "application"; "Mapping I"; "Mapping II"; "Mapping III"; "Mapping IV"; "model" ]
    rows

(* ---- Fig 7(c): cache capacities ------------------------------------------- *)

let with_caches scale =
  let t = config.Config.topology in
  Config.with_topology config
    (Topology.make ~compute_nodes:t.Topology.compute_nodes ~io_nodes:t.Topology.io_nodes
       ~storage_nodes:t.Topology.storage_nodes ~block_elems:t.Topology.block_elems
       ~io_cache_blocks:(max 1 (int_of_float (float_of_int t.Topology.io_cache_blocks *. scale)))
       ~storage_cache_blocks:
         (max 1 (int_of_float (float_of_int t.Topology.storage_cache_blocks *. scale)))
       ())

let fig7c () =
  let scales = [ 0.25; 0.5; 1.0; 2.0 ] in
  let rows =
    List.map
      (fun app ->
        app.App.name
        :: List.map
             (fun scale ->
               let cfg = with_caches scale in
               let d = Experiment.default_run cfg app in
               let o = Experiment.inter_run cfg app in
               Report.f3 (Experiment.normalized ~base:d o))
             scales)
      apps
  in
  Report.print_table ~title:"Fig 7(c): sensitivity to cache capacities (normalized times)"
    ~header:[ "application"; "1/4 caches"; "1/2 caches"; "default"; "2x caches" ]
    rows;
  print_endline "(paper: smaller caches -> larger improvements)\n"

(* ---- Fig 7(d): node counts -------------------------------------------------- *)

let fig7d () =
  let configs =
    [ ("(64,16,4)", 64, 16, 4); ("(64,8,4)", 64, 8, 4); ("(64,8,2)", 64, 8, 2);
      ("(64,32,8)", 64, 32, 8); ("(32,16,4)", 32, 16, 4) ]
  in
  let t = config.Config.topology in
  let rows =
    List.map
      (fun app ->
        app.App.name
        :: List.map
             (fun (_, c, io, st) ->
               let cfg =
                 Config.with_topology config
                   (Topology.make ~compute_nodes:c ~io_nodes:io ~storage_nodes:st
                      ~block_elems:t.Topology.block_elems
                      ~io_cache_blocks:t.Topology.io_cache_blocks
                      ~storage_cache_blocks:t.Topology.storage_cache_blocks ())
               in
               let d = Experiment.default_run cfg app in
               let o = Experiment.inter_run cfg app in
               Report.f3 (Experiment.normalized ~base:d o))
             configs)
      apps
  in
  Report.print_table
    ~title:"Fig 7(d): sensitivity to node counts (compute, I/O, storage)"
    ~header:("application" :: List.map (fun (n, _, _, _) -> n) configs)
    rows;
  print_endline "(paper: more sharing per cache -> larger improvements)\n"

(* ---- Fig 7(e): block size ----------------------------------------------------- *)

let fig7e () =
  let t = config.Config.topology in
  let sizes = [ 16; 32; 64; 128 ] in
  let rows =
    List.map
      (fun app ->
        app.App.name
        :: List.map
             (fun block_elems ->
               (* cache capacity held constant in bytes *)
               let cfg =
                 Config.with_topology config
                   (Topology.make ~compute_nodes:t.Topology.compute_nodes
                      ~io_nodes:t.Topology.io_nodes ~storage_nodes:t.Topology.storage_nodes
                      ~block_elems
                      ~io_cache_blocks:
                        (t.Topology.io_cache_blocks * t.Topology.block_elems / block_elems)
                      ~storage_cache_blocks:
                        (t.Topology.storage_cache_blocks * t.Topology.block_elems / block_elems)
                      ())
               in
               let d = Experiment.default_run cfg app in
               let o = Experiment.inter_run cfg app in
               Report.f3 (Experiment.normalized ~base:d o))
             sizes)
      apps
  in
  Report.print_table ~title:"Fig 7(e): sensitivity to data block size (elements per block)"
    ~header:("application" :: List.map string_of_int sizes)
    rows;
  print_endline
    "(paper: smaller blocks -> larger improvements; our model inverts this — see EXPERIMENTS.md)\n"

(* ---- Fig 7(f): layers targeted ------------------------------------------------- *)

let fig7f () =
  let per_scope = Hashtbl.create 3 in
  let rows =
    List.map
      (fun app ->
        let cell scope =
          let r =
            match scope with
            | Internode.Both -> inter_run app
            | s -> Experiment.inter_run ~scope:s config app
          in
          let n = norm app r in
          let prev = try Hashtbl.find per_scope scope with Not_found -> [] in
          Hashtbl.replace per_scope scope (n :: prev);
          Report.f3 n
        in
        [ app.App.name; cell Internode.Io_only; cell Internode.Storage_only;
          cell Internode.Both ])
      apps
  in
  Report.print_table ~title:"Fig 7(f): layers targeted by the optimization"
    ~header:[ "application"; "I/O only"; "storage only"; "both" ]
    rows;
  let mean scope = improvement_pct (Hashtbl.find per_scope scope) in
  Printf.printf
    "average improvements: io-only %.1f%%, storage-only %.1f%%, both %.1f%% (paper: 9.1 / 13.0 / 23.7)\n\n"
    (mean Internode.Io_only) (mean Internode.Storage_only) (mean Internode.Both)

(* ---- Fig 7(g): prior work --------------------------------------------------------- *)

let fig7g () =
  let cm = ref [] and ri = ref [] and inter = ref [] in
  let rows =
    List.map
      (fun app ->
        let compmap = Experiment.compmap_run ~sample:8 config app in
        let reindex = Experiment.reindex_static_run config app in
        let our = inter_run app in
        let n_cm = norm app compmap and n_ri = norm app reindex and n_in = norm app our in
        cm := n_cm :: !cm;
        ri := n_ri :: !ri;
        inter := n_in :: !inter;
        [ app.App.name; Report.f3 n_cm; Report.f3 n_ri; Report.f3 n_in ])
      apps
  in
  Report.print_table ~title:"Fig 7(g): comparison against prior optimizations"
    ~header:[ "application"; "compmap [26]"; "reindex [27]"; "inter (ours)" ]
    rows;
  Printf.printf
    "average improvements: compmap %.1f%%, reindex %.1f%%, inter %.1f%% (paper: 7.6 / 7.1 / 23.7)\n\n"
    (improvement_pct !cm) (improvement_pct !ri) (improvement_pct !inter)

(* ---- Fig 7(h): exclusive cache management ------------------------------------------ *)

let fig7h () =
  let lru = ref [] and karma = ref [] and demote = ref [] in
  let rows =
    List.map
      (fun app ->
        let n_lru = norm app (inter_run app) in
        let ratio caching =
          let d = Experiment.default_run ~caching config app in
          let o = Experiment.inter_run ~caching config app in
          o.Run.elapsed_us /. d.Run.elapsed_us
        in
        let n_karma = ratio Run.Karma in
        let n_demote = ratio Run.Demote in
        lru := n_lru :: !lru;
        karma := n_karma :: !karma;
        demote := n_demote :: !demote;
        [ app.App.name; Report.f3 n_lru; Report.f3 n_karma; Report.f3 n_demote ])
      apps
  in
  Report.print_table
    ~title:"Fig 7(h): our optimization under hierarchical cache management schemes"
    ~header:[ "application"; "LRU (default)"; "KARMA [47]"; "DEMOTE-LRU [44]" ]
    rows;
  Printf.printf
    "average improvements: LRU %.1f%%, KARMA %.1f%%, DEMOTE %.1f%% (paper: 23.7 / 30.1 / 28.6)\n\n"
    (improvement_pct !lru) (improvement_pct !karma) (improvement_pct !demote)

(* ---- Ablation A1: reference weighting (Eq. 5) --------------------------------------- *)

let ablation_weights () =
  let rows =
    List.filter_map
      (fun app ->
        let weighted = norm app (inter_run app) in
        let unweighted = norm app (Experiment.inter_run ~weighted:false config app) in
        if abs_float (weighted -. unweighted) > 1e-9 then
          Some [ app.App.name; Report.f3 weighted; Report.f3 unweighted ]
        else None)
      apps
  in
  Report.print_table
    ~title:"Ablation A1: Step I constraint ordering (weighted vs declaration order)"
    ~header:[ "application (only those affected)"; "weighted (Eq. 5)"; "unweighted" ]
    (if rows = [] then [ [ "(no app affected under this configuration)"; "-"; "-" ] ]
     else rows)

(* ---- Ablation A2: chunk alignment to the data block ----------------------------------- *)

let ablation_pattern () =
  (* aligned chunks (the default) vs element-aligned chunks: quantifies the
     boundary-block sharing the full pass avoids *)
  let rows =
    List.map
      (fun app ->
        let aligned = norm app (inter_run app) in
        let unaligned =
          let spec0 = Config.spec_for config app.App.program in
          let spec =
            Internode.make_spec ~threads:spec0.Internode.threads
              ~num_blocks:spec0.Internode.num_blocks ~layers:spec0.Internode.layers ~align:1
          in
          let plan = Optimizer.run ~spec app.App.program in
          norm app
            (Run.run ~config ~layouts:(fun id -> Optimizer.layout_of plan id) app)
        in
        [ app.App.name; Report.f3 aligned; Report.f3 unaligned ])
      apps
  in
  Report.print_table
    ~title:"Ablation A2: chunk alignment to the block/stripe size"
    ~header:[ "application"; "block-aligned chunks"; "element-aligned chunks" ]
    rows

(* ---- Ablation A3: template-hierarchy compilation (Section 4.3) ------------------------- *)

let ablation_template () =
  let rows =
    List.map
      (fun app ->
        let exact = norm app (inter_run app) in
        let template = norm app (Experiment.inter_template_run config app) in
        [ app.App.name; Report.f3 exact; Report.f3 template ])
      apps
  in
  Report.print_table
    ~title:"Ablation A3: capacity-exact vs template-hierarchy compilation (Sec 4.3)"
    ~header:[ "application"; "exact hierarchy"; "template (capacity-oblivious)" ]
    rows;
  print_endline "(the paper predicts the template variant works 'with some performance loss')
"

(* ---- Amortization: canonical <-> optimized conversions (Section 4.3) -------------------- *)

let amortization () =
  let block_elems = config.Config.topology.Topology.block_elems in
  let rows =
    List.filter_map
      (fun app ->
        let plan_ = Experiment.inter_plan config app in
        let conversion =
          List.fold_left
            (fun acc decision ->
              match decision.Optimizer.layout with
              | File_layout.Row_major _ -> acc
              | to_layout ->
                let from_layout =
                  File_layout.Row_major (File_layout.space to_layout)
                in
                let p = Relayout.plan ~block_elems ~from_layout ~to_layout in
                acc +. Relayout.cost_us ~read_us:1400. ~write_us:1400. p)
            0. plan_.Optimizer.decisions
        in
        let d = default_run app and o = inter_run app in
        match
          Relayout.break_even ~conversion_us:(2. *. conversion)
            ~default_us:d.Run.elapsed_us ~optimized_us:o.Run.elapsed_us
        with
        | Some n ->
          Some
            [ app.App.name;
              Printf.sprintf "%.1f" (2. *. conversion /. 1000.);
              string_of_int n ]
        | None -> Some [ app.App.name; Printf.sprintf "%.1f" (2. *. conversion /. 1000.); "-" ])
      apps
  in
  Report.print_table
    ~title:"Amortization: in+out canonical-layout conversions (Sec 4.3 extension)"
    ~header:[ "application"; "conversion cost (ms)"; "executions to break even" ]
    rows

(* ---- Prefetching: linear layouts make readahead effective ------------------------------- *)

let prefetch () =
  let rows =
    List.map
      (fun app ->
        let run layouts readahead =
          (Run.run ~readahead ~config ~layouts app).Run.elapsed_us
        in
        let dl = Experiment.default_layouts app in
        let il = Experiment.inter_layouts config app in
        let d0 = run dl 0 and d2 = run dl 2 in
        let o0 = run il 0 and o2 = run il 2 in
        [
          app.App.name;
          Report.f3 (d2 /. d0);
          Report.f3 (o2 /. o0);
        ])
      apps
  in
  Report.print_table
    ~title:"Prefetching: execution time with readahead=2, normalized to readahead=0"
    ~header:[ "application"; "default layout"; "inter-node layout" ]
    rows;
  print_endline
    "(the paper remarks linear layouts improve hardware prefetching: readahead should
     help the optimized layout at least as much as the scattered default)
"

(* ---- Latency: request-latency percentiles from the observability layer ------------------ *)

let latency () =
  let rows =
    List.map
      (fun app ->
        let run layouts =
          let registry = Flo_obs.Metrics.create () in
          ignore (Run.run ~metrics:registry ~config ~layouts app);
          match Flo_obs.Metrics.find_histogram registry "request_latency_us" with
          | Some h ->
            ( Flo_obs.Histogram.percentile h 0.5,
              Flo_obs.Histogram.percentile h 0.99 )
          | None -> (0., 0.)
        in
        let d50, d99 = run (Experiment.default_layouts app) in
        let o50, o99 = run (Experiment.inter_layouts config app) in
        [
          app.App.name;
          Report.f1 d50; Report.f1 d99;
          Report.f1 o50; Report.f1 o99;
        ])
      apps
  in
  Report.print_table
    ~title:"Latency: per-request modeled latency percentiles (us), default vs inter-node"
    ~header:
      [ "application"; "default p50"; "default p99"; "inter p50"; "inter p99" ]
    rows;
  print_endline
    "(per-request percentiles, not totals: the pass coalesces away the cheap\n\
     \ cache-hit requests, so the surviving mix is disk-heavier — p99 can rise\n\
     \ even as the number of requests and total time drop sharply)
"

(* ---- Trace analysis: the Step I/II objectives, observed ---------------------------------- *)

let analysis () =
  let module A = Flo_analysis.Analyzer in
  let analyze layouts app =
    let a = A.create () in
    ignore (Run.run ~config ~layouts ~sink:(A.sink a) app);
    a
  in
  let cross = ref [] and conflicts = ref [] in
  let rows =
    List.map
      (fun app ->
        let d = analyze (Experiment.default_layouts app) app in
        let o = analyze (Experiment.inter_layouts config app) app in
        let dc = A.cross_shared_at d Flo_obs.Event.L2
        and oc = A.cross_shared_at o Flo_obs.Event.L2 in
        let df = A.conflicts_at d Flo_obs.Event.L2
        and off = A.conflicts_at o Flo_obs.Event.L2 in
        let p50 a' =
          let h = A.reuse_histogram_at a' Flo_obs.Event.L1 in
          if Flo_obs.Histogram.is_empty h then "-"
          else Report.f1 (Flo_obs.Histogram.percentile h 0.5)
        in
        if dc > 0 then cross := (float_of_int oc /. float_of_int dc) :: !cross;
        if df > 0 then conflicts := (float_of_int off /. float_of_int df) :: !conflicts;
        [
          app.App.name;
          string_of_int dc; string_of_int oc;
          string_of_int df; string_of_int off;
          p50 d; p50 o;
        ])
      apps
  in
  Report.print_table
    ~title:
      "Trace analysis: L2 cross-thread sharing, eviction conflicts, L1 reuse p50 \
       (default vs inter-node layout)"
    ~header:
      [ "application"; "shared (def)"; "shared (opt)"; "confl (def)"; "confl (opt)";
        "reuse p50 (def)"; "reuse p50 (opt)" ]
    rows;
  Printf.printf
    "cross-thread shared blocks, optimized/default mean ratio: %.3f over %d apps with sharing\n"
    (Report.mean !cross) (List.length !cross);
  if !conflicts <> [] then
    Printf.printf "eviction conflicts, optimized/default mean ratio: %.3f over %d apps\n"
      (Report.mean !conflicts) (List.length !conflicts);
  print_newline ()

(* ---- C1: compile-time cost (bechamel) -------------------------------------------------- *)

let compile_bench () =
  let open Bechamel in
  let test_of_app app =
    Test.make ~name:app.App.name
      (Staged.stage (fun () -> ignore (Experiment.inter_plan config app)))
  in
  let test = Test.make_grouped ~name:"pass" (List.map test_of_app apps) in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  print_endline "== C1: compile-time cost of the pass (bechamel) ==";
  (* gather first so the name column is as wide as its widest cell (and the
     rows print in a stable order, not Hashtbl order) *)
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        let cell =
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Printf.sprintf "%12.1f us per invocation" (est /. 1000.)
          | _ -> "(no estimate)"
        in
        (name, cell) :: acc)
      results []
    |> List.sort compare
  in
  let width = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows in
  List.iter (fun (name, cell) -> Printf.printf "%-*s %s\n" width name cell) rows;
  print_newline ();
  print_endline
    "(paper: +36% average compilation time, max ~50 s inside SUIF; our pass runs on\n\
     polyhedral summaries, so invocations are microseconds)";
  print_newline ()

(* ---- json: machine-readable trajectory manifest (Bench_schema) --------------------------- *)

(* `bench -- json --out FILE [--apps a,b] [--sample N] [--jobs N]` records
   the headline numbers of this invocation as a flopt-bench manifest for
   `flopt bench-diff`.  Deterministic modeled quantities are gated (CI
   compares them against bench/baseline.json); bechamel wall times ride
   along ungated.  Collection fans over apps on a domain pool (Bench_json);
   with --jobs > 1 the gated metrics are re-collected at --jobs 1 and the
   two must agree exactly — the determinism self-check — and the suite
   wall-clock speedup is recorded ungated. *)
let json_mode args =
  let out = ref None and app_filter = ref None and sample = ref 1 in
  let jobs = ref (Parallel.default_jobs ()) in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
      out := Some v;
      parse rest
    | "--apps" :: v :: rest ->
      app_filter := Some (String.split_on_char ',' v);
      parse rest
    | "--sample" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> sample := n
      | _ ->
        prerr_endline "bench json: --sample must be a positive integer";
        exit 2);
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> jobs := n
      | _ ->
        prerr_endline "bench json: --jobs must be a positive integer";
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "bench json: unknown argument %S\n" arg;
      exit 2
  in
  parse args;
  let out =
    match !out with
    | Some o -> o
    | None ->
      prerr_endline "bench json: --out FILE is required";
      exit 2
  in
  let selected =
    match !app_filter with
    | None -> apps
    | Some names ->
      List.map
        (fun name ->
          match List.find_opt (fun a -> a.App.name = name) apps with
          | Some a -> a
          | None ->
            Printf.eprintf "bench json: unknown application %S\n" name;
            exit 2)
        names
  in
  let sample = !sample and jobs = !jobs in
  let wall_per_invocation app layouts =
    (* one ungated wall-time point per app: the modeled run, best of 3 timed
       passes (machine-dependent by construction).  Not bechamel: its
       live-word stabilization cannot run while other domains are active,
       and this hook executes inside the --jobs worker pool *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (Run.run ~sample ~config ~layouts app);
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9
  in
  let collect jobs =
    let t0 = Unix.gettimeofday () in
    let m =
      Bench_json.collect ~jobs ~sample ~wall_ns_inter:wall_per_invocation
        ~progress:(fun name -> Printf.eprintf "bench json: %s...\n%!" name)
        ~config selected
    in
    (m, Unix.gettimeofday () -. t0)
  in
  let manifest, par_wall = collect jobs in
  let suite_metrics =
    let m ~name ~value ~unit_ =
      { Bench_schema.app = "_suite"; name; value; unit_; gated = false }
    in
    if jobs <= 1 then [ m ~name:"suite_wall_s.seq" ~value:par_wall ~unit_:"s" ]
    else begin
      Printf.eprintf "bench json: re-collecting at --jobs 1 (determinism check)...\n%!";
      let seq_manifest, seq_wall = collect 1 in
      if not (Bench_json.equal_gated manifest seq_manifest) then begin
        Printf.eprintf
          "bench json: gated metrics differ between --jobs %d and --jobs 1\n" jobs;
        exit 1
      end;
      Printf.eprintf "bench json: gated metrics identical across jobs settings\n%!";
      [
        m ~name:"suite_wall_s.seq" ~value:seq_wall ~unit_:"s";
        m ~name:(Printf.sprintf "suite_wall_s.jobs%d" jobs) ~value:par_wall ~unit_:"s";
        m ~name:"suite_speedup" ~value:(seq_wall /. Float.max 1e-9 par_wall) ~unit_:"x";
      ]
    end
  in
  let traffic_metrics, traffic_result, traffic_wall =
    (* ungated traffic-engine numbers: the batched multi-tenant replay
       (Flo_traffic) against the per-element simulate loop it replaces.
       All wall-clock, so never gated; the modeled request count rides
       along for scale context. *)
    Printf.eprintf "bench json: traffic engine...\n%!";
    let params =
      (* 8 windows so the ride-along SLO metrics see real multi-window
         behavior instead of the degenerate single-window verdict *)
      { (Flo_traffic.Engine.default_params ~mix:selected) with
        Flo_traffic.Engine.sample; windows = 8 }
    in
    let t0 = Unix.gettimeofday () in
    let result = Flo_traffic.Engine.simulate ~jobs ~config params in
    let tenant_wall = Unix.gettimeofday () -. t0 in
    (* loop baseline: modeled requests per wall second of one closed-loop
       per-element run of the head app (what a tenant job costs without
       kernel batching) *)
    let head = List.hd selected in
    let layouts = Experiment.inter_layouts config head in
    let l0 = Unix.gettimeofday () in
    let r = Run.run ~sample ~config ~layouts head in
    let loop_wall = Unix.gettimeofday () -. l0 in
    let loop_rps = float_of_int r.Run.block_requests /. Float.max 1e-9 loop_wall in
    let modeled_rps = result.Flo_traffic.Engine.modeled_rps in
    let m ~name ~value ~unit_ =
      { Bench_schema.app = "_traffic"; name; value; unit_; gated = false }
    in
    let slo_metrics =
      (* fleet SLO health of the same run: deterministic and jobs-invariant,
         but trajectory data (it moves whenever the modeled engine is meant
         to improve), so ungated like the rest of the traffic numbers *)
      match Flo_obs.Slo.parse "p99<100ms@99" with
      | Error _ -> []
      | Ok spec ->
        let e = Flo_traffic.Slo_eval.evaluate spec result in
        let v = e.Flo_traffic.Slo_eval.fleet.Flo_traffic.Slo_eval.verdict in
        let s ~name ~value ~unit_ =
          { Bench_schema.app = "_slo"; name; value; unit_; gated = false }
        in
        [
          s ~name:"fleet_burn_rate" ~value:v.Flo_obs.Slo.burn_rate ~unit_:"x";
          s ~name:"fleet_budget_remaining" ~value:v.Flo_obs.Slo.budget_remaining
            ~unit_:"frac";
          s ~name:"fleet_compliance" ~value:v.Flo_obs.Slo.compliance ~unit_:"frac";
        ]
    in
    [
      m ~name:"modeled_requests"
        ~value:(float_of_int result.Flo_traffic.Engine.total_requests)
        ~unit_:"req";
      m ~name:"modeled_rps" ~value:modeled_rps ~unit_:"req/s";
      m ~name:"tenant_wall_s" ~value:tenant_wall ~unit_:"s";
      m ~name:"loop_rps" ~value:loop_rps ~unit_:"req/s";
      m ~name:"speedup_vs_loop" ~value:(modeled_rps /. Float.max 1e-9 loop_rps)
        ~unit_:"x";
    ]
    @ slo_metrics,
    result, tenant_wall
  in
  let trace_metrics =
    (* ungated sampled-tracing numbers: re-run the same traffic params with
       tracing on and report what the sampler kept plus the wall-clock cost
       of the observation sweep.  The modeled numbers of the traced run must
       be byte-identical to the untraced run above — tracing only ever adds
       exemplars, never counts — so the verdict lines are compared here and
       any divergence aborts the bench. *)
    Printf.eprintf "bench json: traffic engine (traced)...\n%!";
    let params =
      (* 8 windows so the ride-along SLO metrics see real multi-window
         behavior instead of the degenerate single-window verdict *)
      { (Flo_traffic.Engine.default_params ~mix:selected) with
        Flo_traffic.Engine.sample; windows = 8;
        trace =
          Some
            { Flo_traffic.Tracer.default with
              Flo_traffic.Tracer.sample_rate = 4096 } }
    in
    let t0 = Unix.gettimeofday () in
    let traced = Flo_traffic.Engine.simulate ~jobs ~config params in
    let traced_wall = Unix.gettimeofday () -. t0 in
    let untraced_line = Flo_traffic.Traffic_report.verdict_line traffic_result in
    let traced_line = Flo_traffic.Traffic_report.verdict_line traced in
    if untraced_line <> traced_line then begin
      Printf.eprintf
        "bench json: tracing changed modeled numbers:\n  off: %s\n  on:  %s\n"
        untraced_line traced_line;
      exit 2
    end;
    Printf.eprintf "bench json: traced modeled numbers identical to untraced\n%!";
    let traces = traced.Flo_traffic.Engine.traces in
    let represented =
      List.fold_left (fun a (t : Flo_obs.Trace.t) -> a + t.Flo_obs.Trace.count) 0
        traces
    in
    let spans =
      List.fold_left (fun a t -> a + Flo_obs.Trace.span_count t) 0 traces
    in
    let m ~name ~value ~unit_ =
      { Bench_schema.app = "_trace"; name; value; unit_; gated = false }
    in
    [
      m ~name:"sampled_traces" ~value:(float_of_int (List.length traces))
        ~unit_:"trace";
      m ~name:"sampled_requests" ~value:(float_of_int represented) ~unit_:"req";
      m ~name:"sampled_spans" ~value:(float_of_int spans) ~unit_:"span";
      m ~name:"traced_wall_s" ~value:traced_wall ~unit_:"s";
      m ~name:"trace_overhead"
        ~value:(traced_wall /. Float.max 1e-9 traffic_wall) ~unit_:"x";
    ]
  in
  let sim_metrics =
    (* ungated simulation-kernel numbers: closed-loop block-request
       throughput (client buffers + hierarchy + disks, streams
       pregenerated) of the devirtualized Flat_lru kernel against the
       retained closure reference (Lru.reference through the generic
       dispatch path).  Both kernels must agree on the modeled elapsed
       time — the golden suite pins full result identity — so any
       divergence aborts the bench. *)
    Printf.eprintf "bench json: simulation kernel...\n%!";
    let timings =
      List.concat_map
        (fun app ->
          List.map
            (fun layouts ->
              let p = Kernel_bench.prepare ~config ~layouts ~sample app in
              let fast = Kernel_bench.time Kernel_bench.Fast p in
              let refr = Kernel_bench.time Kernel_bench.Reference p in
              if fast.Kernel_bench.elapsed_us <> refr.Kernel_bench.elapsed_us
              then begin
                Printf.eprintf
                  "bench json: sim kernels disagree on %s: fast %.17g us, ref %.17g us\n"
                  app.App.name fast.Kernel_bench.elapsed_us
                  refr.Kernel_bench.elapsed_us;
                exit 2
              end;
              (fast, refr))
            [ Experiment.default_layouts app; Experiment.inter_layouts config app ])
        selected
    in
    let fast_wall =
      List.fold_left (fun a (f, _) -> a +. f.Kernel_bench.wall_s) 0. timings
    in
    let ref_wall =
      List.fold_left (fun a (_, r) -> a +. r.Kernel_bench.wall_s) 0. timings
    in
    let requests =
      List.fold_left (fun a (f, _) -> a + f.Kernel_bench.block_requests) 0 timings
    in
    Printf.eprintf "bench json: sim kernel modeled numbers identical to reference\n%!";
    let m ~name ~value ~unit_ =
      { Bench_schema.app = "_sim"; name; value; unit_; gated = false }
    in
    [
      m ~name:"blocks_per_sec"
        ~value:(float_of_int requests /. Float.max 1e-9 fast_wall)
        ~unit_:"req/s";
      m ~name:"suite_wall_s" ~value:fast_wall ~unit_:"s";
      m ~name:"reference_blocks_per_sec"
        ~value:(float_of_int requests /. Float.max 1e-9 ref_wall)
        ~unit_:"req/s";
      m ~name:"speedup_vs_reference"
        ~value:(ref_wall /. Float.max 1e-9 fast_wall)
        ~unit_:"x";
    ]
  in
  let overload_metrics =
    (* ungated overload-control numbers: a pinned read-error storm at ~8x
       offered load with fail-fast shedding on.  Goodput and the accepted
       cohort's p99 are the headline graceful-degradation trajectory; the
       shed fraction gives them scale.  Long windows relative to the job
       quantum (15 modeled s vs ~1.5 modeled s per job at sample 1024), so
       the admission controller works at whole-job granularity without the
       quantum dominating. *)
    Printf.eprintf "bench json: overload control...\n%!";
    let faults =
      match Flo_faults.Fault_plan.of_string "read-error:rate=0.05" with
      | Ok f -> f
      | Error msg ->
        Printf.eprintf "bench json: internal error: bad fault spec: %s\n" msg;
        exit 2
    in
    let params =
      { (Flo_traffic.Engine.default_params ~mix:selected) with
        Flo_traffic.Engine.tenants = 16; duration_s = 60.; rate = 2.64;
        windows = 4; sample = 1024; faults;
        overload = Some Flo_traffic.Overload.default }
    in
    let t0 = Unix.gettimeofday () in
    let result = Flo_traffic.Engine.simulate ~jobs ~config params in
    let overload_wall = Unix.gettimeofday () -. t0 in
    let ol =
      match result.Flo_traffic.Engine.overload with
      | Some ol -> ol
      | None ->
        Printf.eprintf "bench json: internal error: overload run lost its stats\n";
        exit 2
    in
    let m ~name ~value ~unit_ =
      { Bench_schema.app = "_overload"; name; value; unit_; gated = false }
    in
    [
      m ~name:"goodput_rps" ~value:ol.Flo_traffic.Engine.ol_goodput_rps
        ~unit_:"req/s";
      m ~name:"shed_fraction" ~value:ol.Flo_traffic.Engine.ol_shed_fraction
        ~unit_:"frac";
      m ~name:"p99_accepted_us" ~value:result.Flo_traffic.Engine.agg_p99_us
        ~unit_:"us";
      m ~name:"overload_wall_s" ~value:overload_wall ~unit_:"s";
    ]
  in
  let manifest =
    { manifest with
      Bench_schema.metrics =
        manifest.Bench_schema.metrics @ suite_metrics @ traffic_metrics
        @ trace_metrics @ sim_metrics @ overload_metrics }
  in
  (match Bench_schema.validate manifest with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "bench json: internal error: invalid manifest: %s\n" msg;
    exit 2);
  Bench_schema.save out manifest;
  Printf.printf "wrote %s (%d metrics over %d apps, schema %s v%d)\n" out
    (List.length manifest.Bench_schema.metrics)
    (List.length manifest.Bench_schema.apps)
    Bench_schema.schema_name Bench_schema.schema_version

(* ---- history: per-commit trend rows + static trend page ---------------------------------- *)

(* `bench -- history --out FILE --commit ID --manifest MANIFEST [--page P]`
   distills one bench manifest into trend points, upserts them as the row
   for ID in the append-only history, and regenerates the self-contained
   HTML/SVG trend page.  Re-running with the same commit and manifest is
   idempotent: the row is replaced in place, so history and page bytes are
   unchanged. *)
let history_mode args =
  let out = ref None and commit = ref None and manifest = ref None in
  let page = ref None in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
      out := Some v;
      parse rest
    | "--commit" :: v :: rest ->
      commit := Some v;
      parse rest
    | "--manifest" :: v :: rest ->
      manifest := Some v;
      parse rest
    | "--page" :: v :: rest ->
      page := Some v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "bench history: unknown argument %S\n" arg;
      exit 2
  in
  parse args;
  let required name = function
    | Some v -> v
    | None ->
      Printf.eprintf "bench history: %s is required\n" name;
      exit 2
  in
  let out = required "--out FILE" !out in
  let commit = required "--commit ID" !commit in
  let manifest_path = required "--manifest MANIFEST" !manifest in
  if not (Bench_history.valid_commit commit) then begin
    Printf.eprintf
      "bench history: bad --commit %S (want 1-64 chars of [A-Za-z0-9._-])\n"
      commit;
    exit 2
  end;
  let page =
    match !page with
    | Some p -> p
    | None ->
      (if Filename.check_suffix out ".json" then Filename.chop_suffix out ".json"
       else out)
      ^ ".html"
  in
  let manifest =
    match Bench_schema.load manifest_path with
    | Ok m -> m
    | Error msg ->
      Printf.eprintf "bench history: cannot load manifest: %s\n" msg;
      exit 2
  in
  let points = Bench_history.metrics_of_manifest manifest in
  if points = [] then begin
    Printf.eprintf "bench history: manifest %s yields no trend points\n"
      manifest_path;
    exit 2
  end;
  let history =
    if Sys.file_exists out then
      match Bench_history.load out with
      | Ok h -> h
      | Error msg ->
        Printf.eprintf "bench history: corrupt history: %s\n" msg;
        exit 2
    else Bench_history.empty
  in
  let history =
    match Bench_history.upsert history ~commit points with
    | Ok h -> h
    | Error msg ->
      Printf.eprintf "bench history: %s\n" msg;
      exit 2
  in
  Bench_history.save out history;
  (* page gets the same side-file + rename discipline as the history *)
  let tmp = page ^ ".tmp" in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (Bench_history.render_page history))
   with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp page;
  Printf.printf "recorded commit %s (%d points) -> %s (%d rows), trend page %s\n"
    commit (List.length points) out
    (List.length history.Bench_history.rows)
    page

(* ---- driver ------------------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1); ("table2", table2); ("table3", table3); ("fig7a", fig7a);
    ("fig7b", fig7b); ("fig7c", fig7c); ("fig7d", fig7d); ("fig7e", fig7e);
    ("fig7f", fig7f); ("fig7g", fig7g); ("fig7h", fig7h);
    ("ablation-weights", ablation_weights); ("ablation-pattern", ablation_pattern);
    ("ablation-template", ablation_template); ("amortization", amortization);
    ("prefetch", prefetch); ("latency", latency); ("analysis", analysis);
    ("compile-bench", compile_bench);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  match requested with
  | "json" :: rest -> json_mode rest
  | "history" :: rest -> history_mode rest
  | _ ->
  let chosen =
    if requested = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown section %S (known: %s)\n" name
              (String.concat ", " (List.map fst sections));
            None)
        requested
  in
  List.iter
    (fun (name, f) ->
      let t0 = Sys.time () in
      f ();
      Printf.printf "[%s finished in %.1f s cpu]\n\n%!" name (Sys.time () -. t0))
    chosen
